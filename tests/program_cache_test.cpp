// Tests for the persistent compiled-program cache: store/load round-trip
// fidelity, cross-run reuse through the DseEngine (warm runs skip the
// compiler and reproduce cold-run bytes), and recovery from hostile cache
// directories — corrupt JSON, schema mismatches, unwritable paths.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>

#if defined(__linux__)
#include <fcntl.h>
#include <linux/fs.h>
#include <sys/ioctl.h>
#include <unistd.h>
#endif

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/core/dse.hpp"
#include "cimflow/core/program_cache.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/io.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty cache directory per test, removed on teardown.
class ProgramCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("cimflow_progcache_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

PersistentProgramCache::Key test_key() {
  PersistentProgramCache::Key key;
  key.model_fingerprint = 0x1234;
  key.arch_fingerprint = 0x5678;
  key.strategy = 2;
  key.batch = 4;
  key.materialize_data = true;
  key.hoist_memory = true;
  return key;
}

TEST_F(ProgramCacheTest, StoreLoadRoundTripsProgramAndMetadata) {
  // A real compiled program, weights materialized so the global image is
  // non-trivial.
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 2;
  copt.materialize_data = true;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

  PersistentProgramCache cache(dir_);
  PersistentProgramCache::Entry entry{compiled.program, compiled.stats,
                                      compiled.plan.strategy, "mapping summary text"};
  ASSERT_TRUE(cache.store(test_key(), entry));

  auto loaded = cache.load(test_key());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->program.cores.size(), compiled.program.cores.size());
  for (std::size_t c = 0; c < compiled.program.cores.size(); ++c) {
    EXPECT_EQ(loaded->program.cores[c].binary(), compiled.program.cores[c].binary());
  }
  EXPECT_EQ(loaded->program.global_image, compiled.program.global_image);
  EXPECT_EQ(loaded->program.barrier_count, compiled.program.barrier_count);
  EXPECT_EQ(loaded->program.input_global_offset, compiled.program.input_global_offset);
  EXPECT_EQ(loaded->program.input_bytes_per_image, compiled.program.input_bytes_per_image);
  EXPECT_EQ(loaded->program.output_global_offset, compiled.program.output_global_offset);
  EXPECT_EQ(loaded->program.output_bytes_per_image,
            compiled.program.output_bytes_per_image);
  EXPECT_EQ(loaded->program.batch, compiled.program.batch);
  EXPECT_EQ(loaded->stats.total_instructions, compiled.stats.total_instructions);
  EXPECT_EQ(loaded->stats.estimated_cycles, compiled.stats.estimated_cycles);
  EXPECT_EQ(loaded->strategy_name, "dp");
  EXPECT_EQ(loaded->mapping_summary, "mapping summary text");

  const PersistentProgramCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ProgramCacheTest, MissingKeyIsACountedMiss) {
  PersistentProgramCache cache(dir_);
  EXPECT_FALSE(cache.load(test_key()).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(ProgramCacheTest, CorruptEntryIsRejectedNotFatal) {
  PersistentProgramCache cache(dir_);
  write_text_file(cache.entry_path(test_key()), "{ not json at all");
  EXPECT_FALSE(cache.load(test_key()).has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);

  // Truncated-but-valid-JSON (a partial write survivor) is also rejected.
  write_text_file(cache.entry_path(test_key()), "{\"schema\": \"cimflow.progcache.v1\"}");
  EXPECT_FALSE(cache.load(test_key()).has_value());
  EXPECT_EQ(cache.stats().rejected, 2u);
}

TEST_F(ProgramCacheTest, SchemaVersionMismatchIsAMiss) {
  const graph::Graph model = models::micro_cnn({});
  compiler::CompileOptions copt;
  copt.batch = 1;
  const compiler::CompileResult compiled =
      compiler::compile(model, arch::ArchConfig::cimflow_default(), copt);
  PersistentProgramCache cache(dir_);
  cache.store(test_key(),
              {compiled.program, compiled.stats, compiled.plan.strategy, ""});
  // Rewrite the entry under a future schema tag.
  const std::string path = cache.entry_path(test_key());
  std::string text = read_text_file(path);
  const std::string from = "cimflow.progcache.v1";
  text.replace(text.find(from), from.size(), "cimflow.progcache.v9");
  write_text_file(path, text);
  EXPECT_FALSE(cache.load(test_key()).has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST_F(ProgramCacheTest, KeyMismatchUnderSameFileNameIsAMiss) {
  const graph::Graph model = models::micro_cnn({});
  compiler::CompileOptions copt;
  copt.batch = 1;
  const compiler::CompileResult compiled =
      compiler::compile(model, arch::ArchConfig::cimflow_default(), copt);
  PersistentProgramCache cache(dir_);
  PersistentProgramCache::Key a = test_key();
  cache.store(a, {compiled.program, compiled.stats, compiled.plan.strategy, ""});
  // Simulate a hash collision: a different key that (hypothetically) maps to
  // the same file. Copy the entry under another key's path and load that key.
  PersistentProgramCache::Key b = test_key();
  b.batch = 99;
  fs::copy_file(cache.entry_path(a), cache.entry_path(b));
  EXPECT_FALSE(cache.load(b).has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST_F(ProgramCacheTest, UnwritableCacheDirThrowsIoErrorNamingThePath) {
  // A regular file where the directory should be: creation fails.
  write_text_file(dir_, "occupied");
  try {
    PersistentProgramCache cache(dir_);
    FAIL() << "expected Error(kIoError)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find(dir_), std::string::npos)
        << "message should name the path: " << e.what();
  }
}

TEST_F(ProgramCacheTest, ModelFingerprintSeesWeightsNotJustTopology) {
  const graph::Graph a = models::micro_cnn({});
  const graph::Graph b = models::micro_cnn({});
  EXPECT_EQ(model_fingerprint(a), model_fingerprint(b));
  graph::Graph c = models::micro_cnn({});
  c.randomize_parameters(0xDEAD);  // same topology, different weights
  EXPECT_NE(model_fingerprint(a), model_fingerprint(c));
}

TEST_F(ProgramCacheTest, KeyDigestSeparatesEveryField) {
  const PersistentProgramCache::Key base = test_key();
  PersistentProgramCache::Key k = base;
  k.model_fingerprint ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.arch_fingerprint ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.strategy ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.batch ^= 1;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.materialize_data = !k.materialize_data;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.hoist_memory = !k.hoist_memory;
  EXPECT_NE(k.digest(), base.digest());
}

// --- DseEngine integration ---------------------------------------------------

std::string digest(const DseResult& result) {
  std::string out;
  for (const DsePoint& point : result.points) {
    out += std::to_string(point.index) + "|";
    out += std::to_string(point.input_seed) + "|";
    out += point.ok ? point.report.summary() : "FAILED:" + point.error;
    out += "\n";
  }
  return out;
}

DseJob warm_job() {
  DseJob job;
  job.mg_sizes = {4, 8};
  job.flit_sizes = {8, 16};
  job.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  job.batch = 2;
  return job;
}

TEST_F(ProgramCacheTest, WarmEngineRunSkipsTheCompilerAndReproducesColdBytes) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  const DseJob job = warm_job();

  PersistentProgramCache cold_cache(dir_);
  DseEngine::Options options;
  options.num_threads = 2;
  options.eval.persistent_cache = &cold_cache;
  const DseResult cold = DseEngine(options).run(model, base, job);
  EXPECT_EQ(cold.stats.persistent_cache_hits, 0u);
  EXPECT_EQ(cold.stats.persistent_cache_stores, cold.stats.compile_cache_misses);
  EXPECT_GT(cold.stats.persistent_cache_stores, 0u);

  // A fresh cache object (fresh process, same directory): every compile is
  // now a disk hit, and the sweep bytes are identical.
  PersistentProgramCache warm_cache(dir_);
  options.eval.persistent_cache = &warm_cache;
  const DseResult warm = DseEngine(options).run(model, base, job);
  EXPECT_EQ(warm.stats.compile_cache_misses, 0u);  // compiler never ran
  EXPECT_EQ(warm.stats.persistent_cache_hits, cold.stats.persistent_cache_stores);
  EXPECT_EQ(digest(warm), digest(cold));
  EXPECT_EQ(warm.to_json(false).dump(), cold.to_json(false).dump());
}

TEST_F(ProgramCacheTest, CorruptedEntryHealsOnTheNextSweep) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job = warm_job();

  PersistentProgramCache cache(dir_);
  DseEngine::Options options;
  options.num_threads = 1;
  options.eval.persistent_cache = &cache;
  const DseResult cold = DseEngine(options).run(model, base, job);

  // Vandalize every entry on disk.
  for (const auto& file : fs::directory_iterator(dir_)) {
    write_text_file(file.path().string(), "garbage");
  }

  PersistentProgramCache healed(dir_);
  options.eval.persistent_cache = &healed;
  const DseResult rerun = DseEngine(options).run(model, base, job);
  EXPECT_EQ(rerun.stats.persistent_cache_hits, 0u);
  EXPECT_GT(healed.stats().rejected, 0u);
  EXPECT_GT(healed.stats().stores, 0u);  // entries rewritten in place
  EXPECT_EQ(digest(rerun), digest(cold));

  // And the healed directory serves hits again.
  PersistentProgramCache verify(dir_);
  options.eval.persistent_cache = &verify;
  const DseResult warm = DseEngine(options).run(model, base, job);
  EXPECT_GT(warm.stats.persistent_cache_hits, 0u);
  EXPECT_EQ(digest(warm), digest(cold));
}

TEST_F(ProgramCacheTest, FunctionalSweepRoundTripsThroughTheCache) {
  // Functional mode materializes weights into the global image — the
  // heavyweight payload path; simulated INT8 outputs must be identical when
  // the program comes from disk.
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job;
  job.mg_sizes = {8};
  job.flit_sizes = {8};
  job.strategies = {compiler::Strategy::kDpOptimized};
  job.batch = 2;
  job.functional = true;

  PersistentProgramCache cache(dir_);
  DseEngine::Options options;
  options.num_threads = 1;
  options.eval.persistent_cache = &cache;
  const DseResult cold = DseEngine(options).run(model, base, job);
  PersistentProgramCache warm_cache(dir_);
  options.eval.persistent_cache = &warm_cache;
  const DseResult warm = DseEngine(options).run(model, base, job);
  ASSERT_EQ(warm.stats.persistent_cache_hits, 1u);
  EXPECT_EQ(digest(warm), digest(cold));
}

// --- size cap + LRU eviction (ROADMAP "cache eviction") ------------------------

/// A tiny but real entry; distinct keys produce distinct files.
PersistentProgramCache::Entry small_entry() {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kGeneric;
  copt.batch = 1;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);
  return {compiled.program, compiled.stats, "generic", "summary"};
}

PersistentProgramCache::Key keyed(std::uint64_t arch_fp) {
  PersistentProgramCache::Key key = test_key();
  key.arch_fingerprint = arch_fp;
  return key;
}

/// Sets or clears the Linux immutable bit on `path`. Returns false when the
/// platform, filesystem, or capabilities don't support it — callers skip the
/// test rather than fail it.
bool set_immutable(const std::string& path, bool on) {
#if defined(__linux__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  int flags = 0;
  bool ok = ::ioctl(fd, FS_IOC_GETFLAGS, &flags) == 0;
  if (ok) {
    if (on) {
      flags |= FS_IMMUTABLE_FL;
    } else {
      flags &= ~FS_IMMUTABLE_FL;
    }
    ok = ::ioctl(fd, FS_IOC_SETFLAGS, &flags) == 0;
  }
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)on;
  return false;
#endif
}

/// Pushes a file's last-use time into the past so LRU ordering is
/// deterministic without sleeping through mtime granularity.
void age_file(const std::string& path, int seconds) {
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(path, now - std::chrono::seconds(seconds));
}

TEST_F(ProgramCacheTest, SizeCapEvictsOldestEntriesFirst) {
  const PersistentProgramCache::Entry entry = small_entry();
  // Measure one entry's footprint, then cap the cache at two entries.
  std::int64_t entry_bytes;
  {
    PersistentProgramCache probe(dir_);
    ASSERT_TRUE(probe.store(keyed(1), entry));
    entry_bytes = static_cast<std::int64_t>(fs::file_size(probe.entry_path(keyed(1))));
    fs::remove_all(dir_);
  }

  PersistentProgramCache cache(dir_, 2 * entry_bytes + entry_bytes / 2);
  ASSERT_TRUE(cache.store(keyed(1), entry));
  age_file(cache.entry_path(keyed(1)), 300);
  ASSERT_TRUE(cache.store(keyed(2), entry));
  age_file(cache.entry_path(keyed(2)), 200);
  ASSERT_TRUE(cache.store(keyed(3), entry));  // cap exceeded: evict oldest

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(keyed(1))));  // oldest gone
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(2))));
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(3))));
  EXPECT_FALSE(cache.load(keyed(1)).has_value());  // degraded to a miss
  EXPECT_TRUE(cache.load(keyed(2)).has_value());
}

TEST_F(ProgramCacheTest, LoadsRefreshLruOrder) {
  const PersistentProgramCache::Entry entry = small_entry();
  std::int64_t entry_bytes;
  {
    PersistentProgramCache probe(dir_);
    ASSERT_TRUE(probe.store(keyed(1), entry));
    entry_bytes = static_cast<std::int64_t>(fs::file_size(probe.entry_path(keyed(1))));
    fs::remove_all(dir_);
  }

  PersistentProgramCache cache(dir_, 2 * entry_bytes + entry_bytes / 2);
  ASSERT_TRUE(cache.store(keyed(1), entry));
  age_file(cache.entry_path(keyed(1)), 300);
  ASSERT_TRUE(cache.store(keyed(2), entry));
  age_file(cache.entry_path(keyed(2)), 200);
  // Using entry 1 makes entry 2 the least recently used.
  ASSERT_TRUE(cache.load(keyed(1)).has_value());
  ASSERT_TRUE(cache.store(keyed(3), entry));

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(1))));   // refreshed by the load
  EXPECT_FALSE(fs::exists(cache.entry_path(keyed(2))));  // now the oldest
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(3))));
}

TEST_F(ProgramCacheTest, JustStoredEntryIsNeverEvicted) {
  const PersistentProgramCache::Entry entry = small_entry();
  std::int64_t entry_bytes;
  {
    PersistentProgramCache probe(dir_);
    ASSERT_TRUE(probe.store(keyed(1), entry));
    entry_bytes = static_cast<std::int64_t>(fs::file_size(probe.entry_path(keyed(1))));
    fs::remove_all(dir_);
  }

  // Cap below a single entry: every store overflows, but the entry just
  // published must survive (evicting it would make the cache useless).
  PersistentProgramCache cache(dir_, entry_bytes / 2);
  ASSERT_TRUE(cache.store(keyed(1), entry));
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(1))));
  EXPECT_EQ(cache.stats().evictions, 0u);
  age_file(cache.entry_path(keyed(1)), 300);
  ASSERT_TRUE(cache.store(keyed(2), entry));  // evicts 1, keeps itself
  EXPECT_FALSE(fs::exists(cache.entry_path(keyed(1))));
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(2))));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(ProgramCacheTest, EqualMtimeTieBreaksByUseOrderNotPathOrder) {
  const PersistentProgramCache::Entry entry = small_entry();
  std::int64_t entry_bytes;
  {
    PersistentProgramCache probe(dir_);
    ASSERT_TRUE(probe.store(keyed(1), entry));
    entry_bytes = static_cast<std::int64_t>(fs::file_size(probe.entry_path(keyed(1))));
    fs::remove_all(dir_);
  }

  PersistentProgramCache cache(dir_, 2 * entry_bytes + entry_bytes / 2);
  ASSERT_TRUE(cache.store(keyed(1), entry));
  ASSERT_TRUE(cache.store(keyed(2), entry));
  // Make the entry whose file path sorts FIRST the one used last: a
  // tie-break that fell back to path order would evict exactly the wrong
  // file, so this test fails if the use counter stops participating.
  const bool one_sorts_first = cache.entry_path(keyed(1)) < cache.entry_path(keyed(2));
  const PersistentProgramCache::Key fresh = one_sorts_first ? keyed(1) : keyed(2);
  const PersistentProgramCache::Key stale = one_sorts_first ? keyed(2) : keyed(1);
  ASSERT_TRUE(cache.load(fresh).has_value());
  // Collapse both files onto one mtime tick, as a coarse-granularity
  // filesystem does to sub-second touches — only the in-process use counter
  // can order them now.
  const auto tick = fs::file_time_type::clock::now() - std::chrono::seconds(300);
  fs::last_write_time(cache.entry_path(keyed(1)), tick);
  fs::last_write_time(cache.entry_path(keyed(2)), tick);
  ASSERT_TRUE(cache.store(keyed(3), entry));  // cap exceeded: one must go

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(fs::exists(cache.entry_path(fresh)));   // used last, survives
  EXPECT_FALSE(fs::exists(cache.entry_path(stale)));  // least recently used
  EXPECT_TRUE(fs::exists(cache.entry_path(keyed(3))));
}

TEST_F(ProgramCacheTest, FailedTouchOnLoadIsCountedNotFatal) {
  PersistentProgramCache cache(dir_);
  ASSERT_TRUE(cache.store(test_key(), small_entry()));
  const std::string path = cache.entry_path(test_key());
  // The immutable bit lets reads through but fails the LRU mtime touch with
  // EPERM even for root — owner-permission games cannot fault an explicit
  // utimensat, so this is the one deterministic way to exercise the path.
  if (!set_immutable(path, true)) {
    GTEST_SKIP() << "immutable bit unavailable "
                    "(needs CAP_LINUX_IMMUTABLE and an ext-style filesystem)";
  }
  auto loaded = cache.load(test_key());
  ASSERT_TRUE(set_immutable(path, false));  // TearDown must be able to clean up
  ASSERT_TRUE(loaded.has_value());          // the hit itself is still served
  const PersistentProgramCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.touch_failures, 1u);
  // The degraded touch must not poison later loads once the fault clears.
  EXPECT_TRUE(cache.load(test_key()).has_value());
  EXPECT_EQ(cache.stats().touch_failures, 1u);
}

TEST_F(ProgramCacheTest, UncappedCacheNeverEvicts) {
  const PersistentProgramCache::Entry entry = small_entry();
  PersistentProgramCache cache(dir_);  // max_bytes = 0 (unlimited)
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(cache.store(keyed(i), entry));
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(fs::exists(cache.entry_path(keyed(i)))) << i;
  }
  EXPECT_THROW(PersistentProgramCache(dir_, -1), Error);  // negative cap rejected
}

}  // namespace
}  // namespace cimflow
