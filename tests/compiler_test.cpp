// Unit + property tests for the compiler's CG level: tile geometry, core
// mapping, cost-model monotonicity, and the three partitioning strategies'
// structural invariants (convex stages, disjoint cover, capacity respected).
#include <gtest/gtest.h>

#include <set>

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/compiler/cost_model.hpp"
#include "cimflow/compiler/layout.hpp"
#include "cimflow/compiler/partition.hpp"
#include "cimflow/compiler/tiling.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::compiler {
namespace {

using graph::ConvAttrs;
using graph::Graph;
using graph::Shape;

const arch::ArchConfig& default_arch() {
  static const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  return arch;
}

Graph conv_graph(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
                 std::int64_t hw = 8) {
  Graph g("conv");
  auto x = g.add_input(Shape{1, hw, hw, in_c});
  x = g.add_conv2d(x, ConvAttrs{out_c, kernel, 1, kernel / 2});
  g.set_output(x);
  g.randomize_parameters(5);
  return g;
}

// --- tile geometry ------------------------------------------------------------

TEST(TilingTest, DenseConvGeometry) {
  const Graph g = conv_graph(256, 512, 3);
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  const TileGeometry geom = tile_geometry(g, cg.group(1), default_arch());
  ASSERT_TRUE(geom.valid);
  EXPECT_FALSE(geom.depthwise);
  EXPECT_EQ(geom.k_rows, 3 * 3 * 256);  // 2304
  EXPECT_EQ(geom.k_cols, 512);
  EXPECT_EQ(geom.row_tiles, 5);  // ceil(2304 / 512)
  EXPECT_EQ(geom.col_tiles, 8);  // ceil(512 / 64)
  EXPECT_EQ(geom.tile_rows(4, default_arch()), 2304 - 4 * 512);  // partial last
  EXPECT_EQ(geom.tile_cols(7, default_arch()), 64);
  EXPECT_EQ(geom.positions, 64);
}

TEST(TilingTest, DepthwiseBlockDiagonal) {
  Graph g("dw");
  auto x = g.add_input(Shape{1, 8, 8, 144});
  x = g.add_depthwise_conv2d(x, 3, 1, 1);
  g.set_output(x);
  g.randomize_parameters(6);
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  const TileGeometry geom = tile_geometry(g, cg.group(1), default_arch());
  ASSERT_TRUE(geom.valid);
  EXPECT_TRUE(geom.depthwise);
  EXPECT_EQ(geom.dw_block, 56);  // min(512/9, 64)
  EXPECT_EQ(geom.col_tiles, 3);  // ceil(144 / 56)
  EXPECT_EQ(geom.tile_cols(2, default_arch()), 144 - 2 * 56);
}

TEST(TilingTest, Depthwise5x5ShrinksBlock) {
  Graph g("dw5");
  auto x = g.add_input(Shape{1, 8, 8, 64});
  x = g.add_depthwise_conv2d(x, 5, 1, 2);
  g.set_output(x);
  g.randomize_parameters(7);
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  const TileGeometry geom = tile_geometry(g, cg.group(1), default_arch());
  EXPECT_EQ(geom.dw_block, 20);  // 512 / 25
}

TEST(TilingTest, MinCoresForConvAndFc) {
  const Graph conv = conv_graph(256, 512, 3);
  const graph::CondensedGraph conv_cg = graph::CondensedGraph::build(conv);
  const TileGeometry geom = tile_geometry(conv, conv_cg.group(1), default_arch());
  // 5 row tiles -> 3 col tiles per core (16 MGs / 5) -> ceil(8/3) = 3 cores.
  EXPECT_EQ(min_cores_for(geom, conv, conv_cg.group(1), default_arch()), 3);

  Graph fc("fc");
  auto x = fc.add_input(Shape{1, 1, 1, 25088});
  x = fc.add_fully_connected(x, 4096);
  fc.set_output(x);
  fc.randomize_parameters(8);
  const graph::CondensedGraph fc_cg = graph::CondensedGraph::build(fc);
  const TileGeometry fc_geom = tile_geometry(fc, fc_cg.group(1), default_arch());
  EXPECT_EQ(fc_geom.row_tiles, 49);
  // FC streams row passes: 1 core minimum regardless of size.
  EXPECT_EQ(min_cores_for(fc_geom, fc, fc_cg.group(1), default_arch()), 1);
}

// --- mapping helpers -----------------------------------------------------------

TEST(MappingTest, StripesCoverAllRows) {
  GroupMapping m;
  m.geom.out_h = 13;
  m.replicas = 4;
  m.cores_per_replica = 1;
  std::int64_t covered = 0;
  std::int64_t previous_end = 0;
  for (std::int64_t r = 0; r < m.replicas; ++r) {
    const auto [a, b] = m.stripe(r);
    EXPECT_EQ(a, previous_end);  // contiguous
    EXPECT_GT(b, a);             // non-empty
    covered += b - a;
    previous_end = b;
  }
  EXPECT_EQ(covered, 13);
}

TEST(MappingTest, ChannelRangesPartitionColumns) {
  GroupMapping m;
  m.geom.valid = true;
  m.geom.k_cols = 500;
  m.geom.col_tiles = 8;  // 64-wide tiles
  m.replicas = 1;
  m.cores_per_replica = 3;
  std::int64_t covered = 0;
  for (std::int64_t j = 0; j < 3; ++j) {
    const auto [c0, c1] = m.channel_range(j, default_arch());
    covered += c1 - c0;
  }
  EXPECT_EQ(covered, 500);
}

// --- cost model -------------------------------------------------------------------

TEST(CostModelTest, DuplicationReducesBound) {
  const Graph g = conv_graph(64, 64, 3, /*hw=*/56);
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  const CostModel model(cg, default_arch(), 8);
  StagePlan no_dup;
  ASSERT_TRUE(model.optimal_mapping({1}, 64, /*dup=*/false, no_dup));
  StagePlan with_dup;
  ASSERT_TRUE(model.optimal_mapping({1}, 64, /*dup=*/true, with_dup));
  EXPECT_GT(with_dup.mappings.at(1).replicas, 1);
  const double bound_1 = model.group_cost(1, no_dup.mappings.at(1)).bound();
  const double bound_d = model.group_cost(1, with_dup.mappings.at(1)).bound();
  EXPECT_LT(bound_d, bound_1);
  EXPECT_LT(model.stage_cycles(with_dup), model.stage_cycles(no_dup));
}

TEST(CostModelTest, InfeasibleWhenCoresExhausted) {
  const Graph g = conv_graph(256, 512, 3);
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  const CostModel model(cg, default_arch(), 4);
  StagePlan plan;
  EXPECT_FALSE(model.optimal_mapping({1}, /*total_cores=*/2, false, plan));
}

TEST(CostModelTest, BufferBudgetPositiveAndOrdered) {
  const BufferBudget budget = buffer_budget(default_arch());
  EXPECT_GT(budget.direct_in_limit, 0);
  EXPECT_GT(budget.direct_out_limit, 0);
  EXPECT_GT(budget.skip_limit, 0);
  // Receive staging must be able to hold any direct chunk.
  EXPECT_LE(budget.direct_out_limit, SegmentPlanner::kRecvStageBytes);
}

TEST(CostModelTest, WindowShrinksWithReplicas) {
  const Graph g = conv_graph(64, 64, 3, /*hw=*/56);
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  const CostModel model(cg, default_arch(), 4);
  StagePlan plan;
  ASSERT_TRUE(model.optimal_mapping({1}, 64, false, plan));
  GroupMapping m1 = plan.mappings.at(1);
  GroupMapping m4 = m1;
  m4.replicas = 4;
  EXPECT_LT(consumer_window_bytes(cg, cg.group(1), m4, default_arch()),
            consumer_window_bytes(cg, cg.group(1), m1, default_arch()));
}

// --- partitioning invariants --------------------------------------------------------

void check_plan_invariants(const graph::CondensedGraph& cg, const MappingPlan& plan,
                           const arch::ArchConfig& arch) {
  // 1. Every compute group appears in exactly one stage.
  std::set<graph::GroupId> seen;
  for (const StagePlan& stage : plan.stages) {
    for (graph::GroupId g : stage.groups) {
      EXPECT_TRUE(seen.insert(g).second) << "group in two stages";
    }
    // 2. Stage fits the chip and core ids are unique within the stage.
    EXPECT_LE(stage.cores_used(), arch.chip().core_count);
    std::set<std::int64_t> cores;
    for (const auto& [gid, m] : stage.mappings) {
      for (std::int64_t c : m.core_ids) {
        EXPECT_TRUE(cores.insert(c).second) << "core assigned twice";
        EXPECT_LT(c, arch.chip().core_count);
      }
    }
  }
  const auto order = cg.compute_order();
  EXPECT_EQ(seen.size(), order.size());
  // 3. Dependencies point to the same or an earlier stage (convexity).
  for (graph::GroupId g : order) {
    const std::int64_t stage = plan.stage_of(g);
    for (graph::GroupId p : cg.group(g).preds) {
      if (cg.group(p).is_input) continue;
      EXPECT_LE(plan.stage_of(p), stage) << "dependency crosses stages backwards";
    }
  }
}

class PartitionInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, Strategy>> {};

TEST_P(PartitionInvariants, HoldForModel) {
  const auto& [model_name, strategy] = GetParam();
  const graph::Graph model = models::build_model(model_name, {.input_hw = 64});
  const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
  const MappingPlan plan = plan_mapping(cg, default_arch(), strategy, 4);
  check_plan_invariants(cg, plan, default_arch());
  EXPECT_GT(plan.estimated_cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByStrategy, PartitionInvariants,
    ::testing::Combine(::testing::Values("micro", "resnet18", "vgg19", "mobilenetv2",
                                         "efficientnetb0"),
                       ::testing::Values(Strategy::kGeneric, Strategy::kOpportunistic,
                                         Strategy::kDpOptimized)),
    [](const auto& info) {
      return std::get<0>(info.param) + std::string("_") +
             to_string(std::get<1>(info.param));
    });

TEST(PartitionTest, DpEstimateNeverWorseThanGreedy) {
  // The greedy plans are within the DP's search space, so the DP's
  // cost-model estimate must be <= both baselines' estimates.
  for (const char* name : {"resnet18", "mobilenetv2"}) {
    const graph::Graph model = models::build_model(name, {.input_hw = 64});
    const graph::CondensedGraph cg = graph::CondensedGraph::build(model);
    const double generic =
        plan_mapping(cg, default_arch(), Strategy::kGeneric, 8).estimated_cycles;
    const double cimmlc =
        plan_mapping(cg, default_arch(), Strategy::kOpportunistic, 8).estimated_cycles;
    const double dp =
        plan_mapping(cg, default_arch(), Strategy::kDpOptimized, 8).estimated_cycles;
    EXPECT_LE(dp, generic * 1.0001) << name;
    EXPECT_LE(dp, cimmlc * 1.0001) << name;
  }
}

TEST(PartitionTest, StrategyNames) {
  EXPECT_EQ(strategy_from_string("generic"), Strategy::kGeneric);
  EXPECT_EQ(strategy_from_string("cimmlc"), Strategy::kOpportunistic);
  EXPECT_EQ(strategy_from_string("dp"), Strategy::kDpOptimized);
  EXPECT_THROW(strategy_from_string("bogus"), Error);
}

// --- whole-compiler checks ------------------------------------------------------------

TEST(CompileTest, StatsAreConsistent) {
  const graph::Graph model = models::micro_cnn({});
  CompileOptions options;
  options.batch = 2;
  const CompileResult result = compile(model, default_arch(), options);
  EXPECT_EQ(result.stats.stages,
            static_cast<std::int64_t>(result.plan.stages.size()));
  EXPECT_EQ(result.stats.total_instructions, result.program.total_instructions());
  EXPECT_EQ(result.program.batch, 2);
  EXPECT_EQ(result.program.barrier_count, result.stats.stages);
  EXPECT_GT(result.stats.weight_image_bytes, model.total_weight_bytes() - 1);
  // Every core program ends with HALT.
  for (const auto& core : result.program.cores) {
    ASSERT_FALSE(core.code.empty());
    EXPECT_EQ(core.code.back().op(), isa::Opcode::kHalt);
  }
}

TEST(CompileTest, TimingOnlySkipsDataMaterialization) {
  const graph::Graph model = models::micro_cnn({});
  CompileOptions options;
  options.materialize_data = false;
  const CompileResult result = compile(model, default_arch(), options);
  EXPECT_TRUE(result.program.global_image.empty());
  EXPECT_GT(result.stats.global_bytes, 0);
}

TEST(CompileTest, EncodableEndToEnd) {
  // Every instruction the compiler emits must survive the 32-bit encoding.
  const graph::Graph model = models::micro_cnn({});
  const CompileResult result = compile(model, default_arch(), {});
  for (const auto& core : result.program.cores) {
    const auto words = core.binary();
    const auto back = isa::CoreProgram::from_binary(words);
    for (std::size_t i = 0; i < core.size(); ++i) {
      EXPECT_EQ(back.code[i], core.code[i]);
    }
  }
}

// --- layout ------------------------------------------------------------------------------

TEST(LayoutTest, SegmentPlannerAllocatesAndOverflows) {
  SegmentPlanner planner(default_arch());
  EXPECT_TRUE(planner.has("wstage"));
  EXPECT_TRUE(planner.has("psum"));
  const std::int64_t off = planner.allocate("in", 1000);
  EXPECT_EQ(planner.allocate("in", 1000), off);  // idempotent
  EXPECT_EQ(planner.size("in"), 1008);           // 16-byte aligned
  EXPECT_THROW(planner.allocate("huge", 1 << 30), Error);
}

TEST(LayoutTest, GlobalLayoutPlacesPerImageSlots) {
  GlobalLayout layout;
  layout.place_tensor(3, 100, 4);
  const TensorPlacement& p = layout.tensor(3);
  EXPECT_EQ(p.per_image, 100);
  EXPECT_GE(layout.total_bytes(), 400);
  layout.place_tensor(3, 100, 4);  // idempotent
  EXPECT_EQ(layout.tensor(3).base, p.base);
}

}  // namespace
}  // namespace cimflow::compiler
