// Tests for the benchmark-model builders: parameter/MAC counts against the
// published architectures, structural invariants and LUT properties.
#include <gtest/gtest.h>

#include "cimflow/graph/condense.hpp"
#include "cimflow/models/models.hpp"

namespace cimflow::models {
namespace {

TEST(ModelsTest, ResNet18Statistics) {
  const graph::Graph g = resnet18();
  // Published: ~11.69M parameters (weights; our count excludes BN which is
  // folded) and ~1.82 GMACs at 224x224.
  const double params = static_cast<double>(g.total_weight_bytes());
  EXPECT_NEAR(params / 1e6, 11.68, 0.3);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 1.82, 0.1);
  EXPECT_EQ(g.node(g.output()).out_shape, (graph::Shape{1, 1, 1, 1000}));
}

TEST(ModelsTest, Vgg19Statistics) {
  const graph::Graph g = vgg19();
  // Published: ~143.7M parameters, ~19.6 GMACs.
  EXPECT_NEAR(static_cast<double>(g.total_weight_bytes()) / 1e6, 143.65, 1.0);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 19.6, 0.5);
  // 16 convolutions + 3 FC layers are MVM anchors.
  const graph::CondensedGraph cg = graph::CondensedGraph::build(g);
  std::int64_t anchors = 0;
  for (const graph::Group& grp : cg.groups()) {
    if (grp.anchor != graph::kInvalidNode) ++anchors;
  }
  EXPECT_EQ(anchors, 19);
}

TEST(ModelsTest, MobileNetV2Statistics) {
  const graph::Graph g = mobilenet_v2();
  // Published: ~3.4-3.5M parameters, ~0.3 GMACs.
  EXPECT_NEAR(static_cast<double>(g.total_weight_bytes()) / 1e6, 3.4, 0.4);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 0.31, 0.05);
}

TEST(ModelsTest, EfficientNetB0Statistics) {
  const graph::Graph g = efficientnet_b0();
  // Published: ~5.3M parameters, ~0.39 GMACs.
  EXPECT_NEAR(static_cast<double>(g.total_weight_bytes()) / 1e6, 5.2, 0.6);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 0.39, 0.08);
  // Squeeze-and-excite appears in every one of the 16 blocks.
  std::int64_t scales = 0;
  for (const graph::Node& node : g.nodes()) {
    if (node.kind == graph::OpKind::kScaleChannels) ++scales;
  }
  EXPECT_EQ(scales, 16);
}

TEST(ModelsTest, CustomResolutionPropagates) {
  ModelOptions opt;
  opt.input_hw = 64;
  const graph::Graph g = resnet18(opt);
  EXPECT_EQ(g.node(g.inputs().front()).out_shape.h, 64);
  // Stem stride 2 + maxpool stride 2 + three stride-2 stages = /32 overall.
  bool found_2x2 = false;
  for (const graph::Node& node : g.nodes()) {
    if (node.out_shape.h == 2 && node.kind == graph::OpKind::kConv2d) found_2x2 = true;
  }
  EXPECT_TRUE(found_2x2);
}

TEST(ModelsTest, BuildByNameAndSuite) {
  EXPECT_EQ(build_model("micro").name(), "micro_cnn");
  EXPECT_THROW(build_model("alexnet"), Error);
  const auto suite = benchmark_suite();
  EXPECT_EQ(suite.size(), 4u);
  for (const std::string& name : suite) {
    EXPECT_NO_THROW(build_model(name, {.input_hw = 64}));
  }
}

TEST(ModelsTest, DeterministicAcrossBuilds) {
  const graph::Graph a = mobilenet_v2({.input_hw = 32});
  const graph::Graph b = mobilenet_v2({.input_hw = 32});
  EXPECT_EQ(a.node_count(), b.node_count());
  for (graph::NodeId id = 0; id < a.node_count(); ++id) {
    if (a.node(id).weights) {
      EXPECT_EQ(*a.node(id).weights, *b.node(id).weights) << "node " << id;
    }
  }
}

TEST(ModelsTest, LutTablesWellFormed) {
  const graph::LutAttrs sigmoid = sigmoid_lut();
  // Sigmoid is monotone nondecreasing over the signed domain and positive.
  for (int raw = -127; raw < 127; ++raw) {
    const auto lo = sigmoid.table[static_cast<std::uint8_t>(static_cast<std::int8_t>(raw))];
    const auto hi =
        sigmoid.table[static_cast<std::uint8_t>(static_cast<std::int8_t>(raw + 1))];
    EXPECT_LE(lo, hi) << "raw=" << raw;
    EXPECT_GE(lo, 0);
  }
  const graph::LutAttrs silu = silu_lut();
  // SiLU(0) = 0; large positive inputs approach identity.
  EXPECT_EQ(silu.table[0], 0);
  EXPECT_GT(silu.table[100], 90);  // silu(6.25) ~ 6.24 in scale-16 units
  // Negative tail is small but non-positive.
  EXPECT_LE(silu.table[static_cast<std::uint8_t>(std::int8_t{-32})], 0);
}

TEST(ModelsTest, MicroCnnIsTiny) {
  const graph::Graph g = micro_cnn({});
  EXPECT_LT(g.total_weight_bytes(), 16 * 1024);
  EXPECT_EQ(g.node(g.output()).out_shape.c, 10);
}

}  // namespace
}  // namespace cimflow::models
