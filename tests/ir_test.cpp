// Unit tests for the IR infrastructure: affine expressions, op attributes,
// printing/verification, and the generic pass library (canonicalize,
// hoisting with conflict analysis, unrolling).
#include <gtest/gtest.h>

#include "cimflow/ir/ir.hpp"
#include "cimflow/ir/pass.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::ir {
namespace {

// --- AffineExpr -----------------------------------------------------------------

TEST(AffineExprTest, ArithmeticAndCanonicalization) {
  AffineExpr e = AffineExpr::var("p", 3);
  e += AffineExpr::var("q", 2);
  e += AffineExpr::var("p", -3);
  e += 7;
  e.canonicalize();
  EXPECT_FALSE(e.references("p"));  // 3p - 3p cancels
  EXPECT_TRUE(e.references("q"));
  EXPECT_EQ(e.evaluate({{"q", 5}}), 17);
}

TEST(AffineExprTest, Scaling) {
  const AffineExpr e = (AffineExpr::var("i") + AffineExpr(2)).scaled(10);
  EXPECT_EQ(e.evaluate({{"i", 3}}), 50);
  EXPECT_EQ(e.scaled(0).to_string(), "0");
}

TEST(AffineExprTest, EvaluateRejectsUnbound) {
  const AffineExpr e = AffineExpr::var("x");
  EXPECT_THROW(e.evaluate({}), Error);
}

TEST(AffineExprTest, ToString) {
  AffineExpr e = AffineExpr::var("p", 4) + AffineExpr(3);
  EXPECT_EQ(e.to_string(), "4*p + 3");
  EXPECT_EQ(AffineExpr(0).to_string(), "0");
}

// --- Op attributes -----------------------------------------------------------------

TEST(OpTest, TypedAccessors) {
  Op op("test.op");
  op.set("n", std::int64_t{5});
  op.set("name", std::string("buf"));
  op.set("idx", AffineExpr::var("i"));
  op.set("list", std::vector<std::int64_t>{1, 2});
  EXPECT_EQ(op.i("n"), 5);
  EXPECT_EQ(op.s("name"), "buf");
  EXPECT_TRUE(op.affine("idx").references("i"));
  EXPECT_EQ(op.ints("list").size(), 2u);
  EXPECT_EQ(op.i_or("missing", 9), 9);
  EXPECT_THROW(op.i("name"), Error);
  EXPECT_THROW(op.s("n"), Error);
}

TEST(OpTest, ConstantAffineReadsAsInt) {
  Op op("test.op");
  op.set("x", AffineExpr(42));
  EXPECT_EQ(op.i("x"), 42);
}

// --- printing & verification ----------------------------------------------------------

Func simple_loop_func() {
  Func func;
  func.name = "f";
  Op loop = make_for("i", 0, 4);
  Op body("mem.copy");
  body.set("dst_buf", std::string("a")).set("dst_index", AffineExpr::var("i", 8));
  body.set("src_buf", std::string("b")).set("src_index", AffineExpr(0));
  body.set("len", std::int64_t{8});
  loop.body.push_back(std::move(body));
  func.body.push_back(std::move(loop));
  return func;
}

TEST(PrintTest, RendersLoopsAndAttrs) {
  const std::string text = print(simple_loop_func());
  EXPECT_NE(text.find("loop.for %i [0, 4)"), std::string::npos);
  EXPECT_NE(text.find("mem.copy"), std::string::npos);
  EXPECT_NE(text.find("dst_index=(8*i)"), std::string::npos);
}

TEST(VerifyTest, CatchesOutOfScopeVariables) {
  Func func;
  Op op("mem.copy");
  op.set("dst_buf", std::string("a")).set("dst_index", AffineExpr::var("ghost"));
  op.set("src_buf", std::string("b")).set("src_index", AffineExpr(0));
  op.set("len", std::int64_t{1});
  func.body.push_back(std::move(op));
  EXPECT_THROW(verify(func), Error);
  EXPECT_NO_THROW(verify(simple_loop_func()));
}

TEST(VerifyTest, CatchesShadowing) {
  Func func;
  Op outer = make_for("i", 0, 2);
  outer.body.push_back(make_for("i", 0, 3));
  func.body.push_back(std::move(outer));
  EXPECT_THROW(verify(func), Error);
}

// --- passes --------------------------------------------------------------------------

TEST(PassTest, CanonicalizeDropsZeroTripLoops) {
  Module module;
  Func func;
  func.body.push_back(make_for("i", 3, 3));
  func.body.push_back(make_for("j", 0, 1));
  module.funcs.push_back(std::move(func));
  PassManager pm;
  pm.add(canonicalize_pass());
  pm.run(module);
  ASSERT_EQ(module.funcs[0].body.size(), 1u);
  EXPECT_EQ(module.funcs[0].body[0].s("var"), "j");
}

TEST(PassTest, UnrollSubstitutesInductionVariable) {
  Module module;
  module.funcs.push_back(simple_loop_func());
  PassManager pm;
  pm.add(unroll_small_loops_pass(/*max_trips=*/4));
  pm.run(module);
  const auto& body = module.funcs[0].body;
  ASSERT_EQ(body.size(), 4u);
  EXPECT_EQ(body[0].kind, "mem.copy");
  EXPECT_EQ(body[2].affine("dst_index").constant, 16);
  EXPECT_TRUE(body[3].affine("dst_index").is_constant());
}

TEST(PassTest, UnrollLeavesBigLoops) {
  Module module;
  module.funcs.push_back(simple_loop_func());
  PassManager pm;
  pm.add(unroll_small_loops_pass(/*max_trips=*/2));
  pm.run(module);
  EXPECT_TRUE(module.funcs[0].body[0].is_loop());
}

TEST(PassTest, HoistsInvariantLeadingCopy) {
  // A copy whose operands don't involve the loop variable, with no buffer
  // conflicts in the body, moves out of the loop.
  Module module;
  Func func;
  Op loop = make_for("i", 0, 4);
  Op invariant("mem.copy");
  invariant.set("dst_buf", std::string("bias")).set("dst_index", AffineExpr(0));
  invariant.set("src_buf", std::string("global")).set("src_index", AffineExpr(100));
  invariant.set("len", std::int64_t{16});
  Op variant("mem.copy");
  variant.set("dst_buf", std::string("out")).set("dst_index", AffineExpr::var("i"));
  variant.set("src_buf", std::string("in")).set("src_index", AffineExpr::var("i"));
  variant.set("len", std::int64_t{1});
  loop.body.push_back(std::move(invariant));
  loop.body.push_back(std::move(variant));
  func.body.push_back(std::move(loop));
  module.funcs.push_back(std::move(func));

  PassManager pm;
  pm.add(hoist_invariant_pass());
  pm.run(module);
  ASSERT_EQ(module.funcs[0].body.size(), 2u);
  EXPECT_EQ(module.funcs[0].body[0].kind, "mem.copy");       // hoisted
  EXPECT_EQ(module.funcs[0].body[0].s("dst_buf"), "bias");
  EXPECT_TRUE(module.funcs[0].body[1].is_loop());
}

TEST(PassTest, HoistBlockedByWriteConflict) {
  // The accumulator-initialization pattern: a copy into "psum" followed by
  // an op that writes "psum" each iteration must NOT be hoisted.
  Module module;
  Func func;
  Op loop = make_for("q", 0, 4);
  Op init("vec.elt");
  init.set("funct", std::int64_t{13});
  init.set("dst_buf", std::string("psum")).set("dst_index", AffineExpr(0));
  init.set("a_buf", std::string("bias")).set("a_index", AffineExpr(0));
  init.set("len", std::int64_t{16});
  Op mvm("cim.mvm");
  mvm.set("mg", std::int64_t{0});
  mvm.set("in_buf", std::string("im2col")).set("in_index", AffineExpr(0));
  mvm.set("out_buf", std::string("psum")).set("out_index", AffineExpr(0));
  mvm.set("rows", std::int64_t{8}).set("cols", std::int64_t{16});
  mvm.set("macs", std::int64_t{128}).set("acc", std::int64_t{1});
  loop.body.push_back(std::move(init));
  loop.body.push_back(std::move(mvm));
  func.body.push_back(std::move(loop));
  module.funcs.push_back(std::move(func));

  PassManager pm;
  pm.add(hoist_invariant_pass());
  pm.run(module);
  ASSERT_EQ(module.funcs[0].body.size(), 1u);  // nothing hoisted
  EXPECT_TRUE(module.funcs[0].body[0].is_loop());
  EXPECT_EQ(module.funcs[0].body[0].body.size(), 2u);
}

TEST(PassTest, HoistBlockedByReadOfBodyWrite) {
  // A leading copy READING a buffer the body writes must stay inside.
  Module module;
  Func func;
  Op loop = make_for("q", 0, 4);
  Op reader("mem.copy");
  reader.set("dst_buf", std::string("stage")).set("dst_index", AffineExpr(0));
  reader.set("src_buf", std::string("window")).set("src_index", AffineExpr(0));
  reader.set("len", std::int64_t{8});
  Op writer("mem.copy");
  writer.set("dst_buf", std::string("window")).set("dst_index", AffineExpr::var("q"));
  writer.set("src_buf", std::string("global")).set("src_index", AffineExpr::var("q"));
  writer.set("len", std::int64_t{1});
  loop.body.push_back(std::move(reader));
  loop.body.push_back(std::move(writer));
  func.body.push_back(std::move(loop));
  module.funcs.push_back(std::move(func));

  PassManager pm;
  pm.add(hoist_invariant_pass());
  pm.run(module);
  EXPECT_TRUE(module.funcs[0].body[0].is_loop());
  EXPECT_EQ(module.funcs[0].body[0].body.size(), 2u);
}

TEST(PassTest, SubstituteVar) {
  std::vector<Op> ops;
  Op op("mem.copy");
  op.set("dst_buf", std::string("a"));
  op.set("dst_index", AffineExpr::var("i", 4) + AffineExpr::var("j", 2));
  op.set("src_buf", std::string("b")).set("src_index", AffineExpr(0));
  op.set("len", std::int64_t{1});
  ops.push_back(std::move(op));
  substitute_var(ops, "i", 3);
  const AffineExpr& idx = ops[0].affine("dst_index");
  EXPECT_FALSE(idx.references("i"));
  EXPECT_EQ(idx.evaluate({{"j", 1}}), 14);
}

TEST(PassTest, DropEmptyLoops) {
  Module module;
  Func func;
  func.body.push_back(make_for("i", 0, 4));  // empty body
  module.funcs.push_back(std::move(func));
  PassManager pm;
  pm.add(drop_empty_loops_pass());
  pm.run(module);
  EXPECT_TRUE(module.funcs[0].body.empty());
}

}  // namespace
}  // namespace cimflow::ir
