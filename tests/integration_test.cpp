// End-to-end integration tests: compile + functionally simulate small graphs
// and require bit-exact equality with the golden reference executor, across
// all three compilation strategies.
#include <gtest/gtest.h>

#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"

namespace cimflow {
namespace {

using compiler::Strategy;
using graph::ConvAttrs;
using graph::Graph;
using graph::PoolAttrs;
using graph::Shape;

EvaluationReport run_validated(const Graph& model, Strategy strategy,
                               std::int64_t batch = 1) {
  Flow flow(arch::ArchConfig::cimflow_default());
  FlowOptions options;
  options.strategy = strategy;
  options.batch = batch;
  options.validate = true;
  return flow.evaluate(model, options);
}

void expect_bit_exact(const Graph& model, Strategy strategy, std::int64_t batch = 1) {
  const EvaluationReport report = run_validated(model, strategy, batch);
  EXPECT_TRUE(report.validation_passed)
      << model.name() << " under " << compiler::to_string(strategy) << ": "
      << report.mismatched_bytes << " mismatched bytes";
}

Graph fc_only() {
  Graph g("fc_only");
  auto x = g.add_input(Shape{1, 1, 1, 64});
  x = g.add_fully_connected(x, 10, "fc");
  g.set_output(x);
  g.randomize_parameters(11);
  return g;
}

Graph conv1x1_only() {
  Graph g("conv1x1");
  auto x = g.add_input(Shape{1, 4, 4, 8});
  x = g.add_conv2d(x, ConvAttrs{16, 1, 1, 0}, "conv");
  g.set_output(x);
  g.randomize_parameters(12);
  return g;
}

Graph conv3x3_pad() {
  Graph g("conv3x3");
  auto x = g.add_input(Shape{1, 6, 6, 8});
  x = g.add_conv2d(x, ConvAttrs{8, 3, 1, 1}, "conv");
  g.set_output(x);
  g.randomize_parameters(13);
  return g;
}

Graph conv_stride2() {
  Graph g("conv_s2");
  auto x = g.add_input(Shape{1, 8, 8, 4});
  x = g.add_conv2d(x, ConvAttrs{8, 3, 2, 1}, "conv");
  g.set_output(x);
  g.randomize_parameters(14);
  return g;
}

Graph conv_relu_chain() {
  Graph g("conv_chain");
  auto x = g.add_input(Shape{1, 6, 6, 8});
  x = g.add_conv2d(x, ConvAttrs{12, 3, 1, 1}, "conv1");
  x = g.add_relu(x);
  x = g.add_conv2d(x, ConvAttrs{8, 1, 1, 0}, "conv2");
  x = g.add_relu(x);
  g.set_output(x);
  g.randomize_parameters(15);
  return g;
}

Graph conv_pool_fc() {
  Graph g("conv_pool_fc");
  auto x = g.add_input(Shape{1, 8, 8, 8});
  x = g.add_conv2d(x, ConvAttrs{16, 3, 1, 1}, "conv");
  x = g.add_relu(x);
  x = g.add_max_pool(x, PoolAttrs{2, 2, 0}, "pool");
  x = g.add_global_avg_pool(x, "gap");
  x = g.add_fully_connected(x, 10, "fc");
  g.set_output(x);
  g.randomize_parameters(16);
  return g;
}

Graph residual_block() {
  Graph g("residual");
  auto in = g.add_input(Shape{1, 6, 6, 8});
  auto main = g.add_conv2d(in, ConvAttrs{8, 3, 1, 1}, "conv1");
  main = g.add_relu(main);
  main = g.add_conv2d(main, ConvAttrs{8, 3, 1, 1}, "conv2");
  auto out = g.add_add(main, in, "add");
  out = g.add_relu(out, 127, "relu_out");
  g.set_output(out);
  g.randomize_parameters(17);
  return g;
}

Graph depthwise_block() {
  Graph g("dw_block");
  auto x = g.add_input(Shape{1, 6, 6, 16});
  x = g.add_depthwise_conv2d(x, 3, 1, 1, "dw");
  x = g.add_relu(x, 110);
  x = g.add_conv2d(x, ConvAttrs{8, 1, 1, 0}, "project");
  g.set_output(x);
  g.randomize_parameters(18);
  return g;
}

Graph se_block() {
  Graph g("se_block");
  auto x = g.add_input(Shape{1, 4, 4, 16});
  auto h = g.add_conv2d(x, ConvAttrs{16, 1, 1, 0}, "expand");
  h = g.add_lut(h, models::silu_lut(), "silu");
  auto se = g.add_global_avg_pool(h, "squeeze");
  se = g.add_fully_connected(se, 4, "reduce");
  se = g.add_lut(se, models::silu_lut(), "se_silu");
  se = g.add_fully_connected(se, 16, "expand_fc");
  se = g.add_lut(se, models::sigmoid_lut(), "gate");
  h = g.add_scale_channels(h, se, "scale");
  h = g.add_conv2d(h, ConvAttrs{8, 1, 1, 0}, "project");
  g.set_output(h);
  g.randomize_parameters(19);
  return g;
}

TEST(IntegrationTest, FcOnly) { expect_bit_exact(fc_only(), Strategy::kDpOptimized); }

TEST(IntegrationTest, Conv1x1) {
  expect_bit_exact(conv1x1_only(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, Conv3x3Pad) {
  expect_bit_exact(conv3x3_pad(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, ConvStride2) {
  expect_bit_exact(conv_stride2(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, ConvReluChain) {
  expect_bit_exact(conv_relu_chain(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, ConvPoolFc) {
  expect_bit_exact(conv_pool_fc(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, ResidualBlock) {
  expect_bit_exact(residual_block(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, DepthwiseBlock) {
  expect_bit_exact(depthwise_block(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, SqueezeExcite) {
  expect_bit_exact(se_block(), Strategy::kDpOptimized);
}

TEST(IntegrationTest, MicroCnnAllStrategies) {
  const Graph model = models::micro_cnn({});
  expect_bit_exact(model, Strategy::kGeneric);
  expect_bit_exact(model, Strategy::kOpportunistic);
  expect_bit_exact(model, Strategy::kDpOptimized);
}

TEST(IntegrationTest, MicroCnnBatchPipeline) {
  expect_bit_exact(models::micro_cnn({}), Strategy::kDpOptimized, /*batch=*/4);
}

// Full benchmark architectures (reduced resolution) under every compilation
// strategy: the strongest end-to-end guarantee in the suite — multi-stage
// execution, FC row-streaming, SE blocks, depthwise and residual paths all
// reproduce the golden executor bit-for-bit.
class FullModelValidation
    : public ::testing::TestWithParam<std::tuple<std::string, Strategy>> {};

TEST_P(FullModelValidation, BitExactAt64px) {
  const auto& [name, strategy] = GetParam();
  models::ModelOptions opt;
  opt.input_hw = 64;
  expect_bit_exact(models::build_model(name, opt), strategy);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, FullModelValidation,
    ::testing::Combine(::testing::Values("resnet18", "vgg19", "mobilenetv2",
                                         "efficientnetb0"),
                       ::testing::Values(Strategy::kGeneric, Strategy::kOpportunistic,
                                         Strategy::kDpOptimized)),
    [](const auto& info) {
      return std::get<0>(info.param) + std::string("_") +
             compiler::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cimflow
