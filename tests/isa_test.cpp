// Unit + property tests for the ISA: binary encode/decode round trips over
// the whole registered opcode space, field-range enforcement, the assembler/
// disassembler text round trip, and the instruction-description registry.
#include <gtest/gtest.h>

#include "cimflow/isa/assembler.hpp"
#include "cimflow/isa/instruction.hpp"
#include "cimflow/isa/program.hpp"
#include "cimflow/isa/registry.hpp"
#include "cimflow/support/rng.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::isa {
namespace {

// --- encode/decode -----------------------------------------------------------

/// Randomizes the operand fields valid for `desc`'s format.
Instruction randomize(const InstructionDescriptor& desc, SplitMix64& rng) {
  Instruction inst;
  inst.opcode = desc.opcode;
  if (desc.funct) inst.funct = *desc.funct;
  inst.rs = static_cast<std::uint8_t>(rng.next_below(32));
  inst.rt = static_cast<std::uint8_t>(rng.next_below(32));
  // Zero fields outside the instruction's textual operand layout so the
  // assembler round trip is meaningful; constrain CIM_CFG's flags to the
  // S-register index space it encodes.
  const Opcode op = static_cast<Opcode>(desc.opcode);
  if (op == Opcode::kBarrier || op == Opcode::kJmp || op == Opcode::kHalt ||
      op == Opcode::kNop) {
    inst.rs = 0;
    inst.rt = 0;
  }
  const bool no_imm_operand = op == Opcode::kHalt || op == Opcode::kNop ||
                              op == Opcode::kMemCpy || op == Opcode::kMemStride;
  if (op == Opcode::kGLi || op == Opcode::kGLih) inst.rs = 0;
  switch (desc.format) {
    case Format::kCim:
      inst.re = static_cast<std::uint8_t>(rng.next_below(32));
      inst.flags = static_cast<std::uint16_t>(rng.next_below(2048));
      if (op == Opcode::kCimCfg) {
        inst.rt = 0;
        inst.re = 0;
        inst.flags = static_cast<std::uint16_t>(rng.next_below(16));
      }
      if (op == Opcode::kCimLoad) {
        inst.re = 0;
        inst.flags = 0;
      }
      break;
    case Format::kVector:
      inst.re = static_cast<std::uint8_t>(rng.next_below(32));
      inst.rd = static_cast<std::uint8_t>(rng.next_below(32));
      if (op == Opcode::kScOp) inst.re = 0;    // scalar R-type has no RE operand
      if (op == Opcode::kVecPool) inst.rt = 0; // pool has no RT operand
      break;
    case Format::kScalarI:
      inst.imm = static_cast<std::int32_t>(rng.next_in(-512, 511));
      break;
    case Format::kComm:
      inst.rd = static_cast<std::uint8_t>(rng.next_below(32));
      inst.imm = no_imm_operand ? 0 : static_cast<std::int32_t>(rng.next_in(-1024, 1023));
      break;
    case Format::kControl:
      inst.imm = no_imm_operand ? 0 : static_cast<std::int32_t>(rng.next_in(-32768, 32767));
      break;
  }
  return inst;
}

/// Property sweep: every registered instruction round-trips through the
/// 32-bit encoding with randomized operands.
class EncodeRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(EncodeRoundTrip, RandomOperands) {
  const InstructionDescriptor* desc = Registry::builtin().find_mnemonic(GetParam());
  ASSERT_NE(desc, nullptr);
  SplitMix64 rng(0xC0FFEE);
  for (int trial = 0; trial < 64; ++trial) {
    const Instruction inst = randomize(*desc, rng);
    const Instruction back = decode(encode(inst));
    EXPECT_EQ(inst, back) << GetParam() << " trial " << trial;
  }
}

std::vector<std::string> all_mnemonics() {
  std::vector<std::string> names;
  for (const InstructionDescriptor* desc : Registry::builtin().all()) {
    names.push_back(desc->mnemonic);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllInstructions, EncodeRoundTrip,
                         ::testing::ValuesIn(all_mnemonics()),
                         [](const auto& info) { return info.param; });

TEST(EncodingTest, FieldRangeErrors) {
  Instruction inst = Instruction::g_li(3, 40000);  // > 16-bit signed
  EXPECT_THROW(encode(inst), Error);
  inst = Instruction::sc_addi(ScalarFunct::kAdd, 1, 2, 600);  // > 10-bit signed
  EXPECT_THROW(encode(inst), Error);
  inst = Instruction::cim_mvm(1, 2, 3, false);
  inst.flags = 4096;  // > 11 bits
  EXPECT_THROW(encode(inst), Error);
}

TEST(EncodingTest, SignedFieldsSignExtend) {
  const Instruction jmp = decode(encode(Instruction::jmp(-26)));
  EXPECT_EQ(jmp.imm, -26);
  const Instruction addi = decode(encode(Instruction::sc_addi(ScalarFunct::kAdd, 1, 2, -512)));
  EXPECT_EQ(addi.imm, -512);
}

TEST(EncodingTest, OpcodeInTopBits) {
  const std::uint32_t word = encode(Instruction::halt());
  EXPECT_EQ(word >> 26, static_cast<std::uint32_t>(Opcode::kHalt));
}

// --- local address helpers ------------------------------------------------------

TEST(AddressTest, LocalTagBit) {
  EXPECT_TRUE(is_local_address(make_local_address(100)));
  EXPECT_FALSE(is_local_address(100));
  EXPECT_EQ(local_offset(make_local_address(12345)), 12345u);
}

// --- registry ----------------------------------------------------------------------

TEST(RegistryTest, LooksUpByFunct) {
  const Instruction add8 = Instruction::vec_op(VecFunct::kAdd8, 1, 2, 3, 4);
  EXPECT_EQ(Registry::builtin().lookup(add8).mnemonic, "VEC_ADD8");
  const Instruction quant = Instruction::vec_op(VecFunct::kQuant, 1, 2, 3, 4);
  EXPECT_EQ(Registry::builtin().lookup(quant).mnemonic, "VEC_QUANT");
}

TEST(RegistryTest, UnitsAreSensible) {
  const Registry& reg = Registry::builtin();
  EXPECT_EQ(reg.find_mnemonic("CIM_MVM")->unit, UnitKind::kCim);
  EXPECT_EQ(reg.find_mnemonic("VEC_ADD8")->unit, UnitKind::kVector);
  EXPECT_EQ(reg.find_mnemonic("SC_ADD")->unit, UnitKind::kScalar);
  EXPECT_EQ(reg.find_mnemonic("SEND")->unit, UnitKind::kTransfer);
  EXPECT_EQ(reg.find_mnemonic("JMP")->unit, UnitKind::kControl);
}

TEST(RegistryTest, RejectsBadCustomRegistrations) {
  Registry reg = Registry::with_builtins();
  InstructionDescriptor desc;
  desc.mnemonic = "MY_OP";
  desc.opcode = 0x05;  // outside the custom range and not a funct extension
  desc.execute = [](const Instruction&, CustomExecContext&) {};
  EXPECT_THROW(reg.register_instruction(desc), Error);

  desc.opcode = 0x30;
  desc.execute = nullptr;  // missing callback
  EXPECT_THROW(reg.register_instruction(desc), Error);

  desc.mnemonic = "CIM_MVM";  // duplicate mnemonic
  desc.execute = [](const Instruction&, CustomExecContext&) {};
  EXPECT_THROW(reg.register_instruction(desc), Error);
}

TEST(RegistryTest, RegistersCustomInstruction) {
  Registry reg = Registry::with_builtins();
  InstructionDescriptor desc;
  desc.mnemonic = "MY_OP";
  desc.opcode = 0x31;
  desc.format = Format::kVector;
  desc.unit = UnitKind::kVector;
  desc.execute = [](const Instruction&, CustomExecContext&) {};
  reg.register_instruction(desc);
  Instruction inst;
  inst.opcode = 0x31;
  EXPECT_EQ(reg.lookup(inst).mnemonic, "MY_OP");
  // Duplicate opcode rejected.
  desc.mnemonic = "MY_OP2";
  EXPECT_THROW(reg.register_instruction(desc), Error);
}

TEST(RegistryTest, UnknownInstructionThrows) {
  Instruction inst;
  inst.opcode = 0x3F;
  EXPECT_THROW(Registry::builtin().lookup(inst), Error);
}

// --- assembler -----------------------------------------------------------------------

TEST(AssemblerTest, AssemblesAndDisassembles) {
  const char* source = R"(
      ; a small loop
      G_LI R2, 0
      G_LI R3, 10
    loop:
      SC_ADDI R2, R2, 1
      BLT R2, R3, loop
      HALT
  )";
  const CoreProgram program = assemble(source);
  ASSERT_EQ(program.size(), 5u);
  EXPECT_EQ(program.code[3].op(), Opcode::kBlt);
  EXPECT_EQ(program.code[3].imm, -1);  // back to SC_ADDI
  const std::string text = disassemble(program);
  EXPECT_NE(text.find("SC_ADDI R2, R2, 1"), std::string::npos);
  EXPECT_NE(text.find("BLT R2, R3, -1"), std::string::npos);
}

TEST(AssemblerTest, TextRoundTripAllInstructions) {
  // Disassemble randomized instructions and re-assemble: must be identical.
  SplitMix64 rng(31337);
  for (const InstructionDescriptor* desc : Registry::builtin().all()) {
    if (desc->mnemonic == "G_LIH") continue;  // re-assembly is trivial anyway
    const Instruction inst = randomize(*desc, rng);
    const std::string line = disassemble(inst);
    const CoreProgram back = assemble(line);
    ASSERT_EQ(back.size(), 1u) << line;
    EXPECT_EQ(back.code[0], inst) << line;
  }
}

TEST(AssemblerTest, ReportsErrorsWithLineNumbers) {
  try {
    assemble("NOP\nBOGUS R1\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(assemble("SC_ADDI R1, R2"), Error);       // operand count
  EXPECT_THROW(assemble("SC_ADDI R1, R2, 9999"), Error); // imm out of range
  EXPECT_THROW(assemble("SC_ADDI R40, R2, 1"), Error);   // bad register
  EXPECT_THROW(assemble("x:\nx:\nNOP"), Error);          // duplicate label
}

TEST(AssemblerTest, CimCfgUsesSRegSyntax) {
  const CoreProgram program = assemble("CIM_CFG S2, R5");
  ASSERT_EQ(program.size(), 1u);
  EXPECT_EQ(program.code[0].flags, 2);
  EXPECT_EQ(program.code[0].rs, 5);
  EXPECT_EQ(disassemble(program.code[0]), "CIM_CFG S2, R5");
}

// --- program container ------------------------------------------------------------------

TEST(ProgramTest, BinaryRoundTrip) {
  CoreProgram program = assemble("G_LI R1, 5\nSC_ADDI R1, R1, 1\nHALT");
  const std::vector<std::uint32_t> words = program.binary();
  const CoreProgram back = CoreProgram::from_binary(words);
  ASSERT_EQ(back.size(), program.size());
  for (std::size_t i = 0; i < program.size(); ++i) {
    EXPECT_EQ(back.code[i], program.code[i]);
  }
}

TEST(ProgramTest, TotalInstructions) {
  Program program(4);
  program.cores[0].code.push_back(Instruction::nop());
  program.cores[2].code.push_back(Instruction::nop());
  program.cores[2].code.push_back(Instruction::halt());
  EXPECT_EQ(program.total_instructions(), 3);
}

}  // namespace
}  // namespace cimflow::isa
