// Round-trip tests for the textual model description format (the
// repository's ONNX-input equivalent).
#include <gtest/gtest.h>

#include "cimflow/graph/executor.hpp"
#include "cimflow/graph/serialize.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::graph {
namespace {

void expect_structurally_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId id = 0; id < a.node_count(); ++id) {
    const Node& x = a.node(id);
    const Node& y = b.node(id);
    EXPECT_EQ(x.kind, y.kind) << "node " << id;
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.inputs, y.inputs);
    EXPECT_EQ(x.out_shape, y.out_shape);
    EXPECT_EQ(x.quant.shift, y.quant.shift);
    if (x.weights) {
      ASSERT_TRUE(y.weights != nullptr);
      EXPECT_EQ(*x.weights, *y.weights) << "node " << id;
    }
  }
  EXPECT_EQ(a.output(), b.output());
}

class ModelRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelRoundTrip, SaveLoadPreservesStructureAndParameters) {
  models::ModelOptions opt;
  opt.input_hw = 64;
  opt.seed = 0x5EED;
  const Graph original = models::build_model(GetParam(), opt);
  const std::string text = save_text(original, opt.seed);
  const Graph loaded = load_text(text);
  expect_structurally_equal(original, loaded);
  EXPECT_EQ(loaded.name(), original.name());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelRoundTrip,
                         ::testing::Values("micro", "resnet18", "vgg19", "mobilenetv2",
                                           "efficientnetb0"),
                         [](const auto& info) { return info.param; });

TEST(SerializeTest, LoadedModelComputesIdentically) {
  const Graph original = models::micro_cnn({});
  const Graph loaded = load_text(save_text(original, models::ModelOptions{}.seed));
  const TensorI8 input =
      random_tensor(original.node(original.inputs().front()).out_shape, 3);
  ReferenceExecutor ea(original), eb(loaded);
  EXPECT_EQ(ea.run({input}), eb.run({input}));
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_THROW(load_text("conv2d c missing_input 8 3 1 1\noutput c\n"), Error);
  EXPECT_THROW(load_text("input x 1 4 4 3\n"), Error);  // no output
  EXPECT_THROW(load_text("input x 1 4 4 3\nbogus y x\noutput x\n"), Error);
  EXPECT_THROW(load_text("input x 1 4 4 3\nconv2d c x 8\noutput c\n"), Error);
  EXPECT_THROW(load_text("input x 1 4 4 3\nlut l x n 123\noutput l\n"), Error);
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  const Graph g = load_text(
      "# header comment\n\n"
      "graph tiny\n"
      "seed 9\n"
      "input x 1 2 2 4\n"
      "conv2d c x 8 1 1 0\n"
      "\n# trailing\noutput c\n");
  EXPECT_EQ(g.name(), "tiny");
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.node(g.output()).out_shape.c, 8);
}

}  // namespace
}  // namespace cimflow::graph
