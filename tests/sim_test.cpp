// Simulator tests: functional ISA semantics via hand-written programs,
// pipeline/unit timing properties, NoC latency & contention, SEND/RECV
// rendezvous, barriers, deadlock/watchdog diagnostics, custom instructions,
// the event scheduler's determinism guarantee, event-ordering edge cases
// (same-cycle contention, barrier ties, identical-timestamp rendezvous),
// and shared-image memory residency.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "cimflow/arch/energy_model.hpp"
#include "cimflow/compiler/compiler.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/isa/assembler.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/sim/noc.hpp"
#include "cimflow/sim/simulator.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow::sim {
namespace {

/// A small 4-core chip keeps hand-written multi-core tests readable.
arch::ArchConfig small_arch() {
  arch::ChipParams chip;
  chip.core_count = 4;
  chip.mesh_cols = 2;
  chip.global_mem_banks = 2;
  return arch::ArchConfig(chip, arch::CoreParams{}, arch::UnitParams{},
                          arch::EnergyParams{});
}

/// Runs `source` on core 0 (other cores just halt) and returns the report.
SimReport run_core0(const arch::ArchConfig& arch, const std::string& source,
                    isa::Program* out_program = nullptr,
                    const isa::Registry* registry = nullptr,
                    std::vector<std::uint8_t> global_image = {}) {
  isa::Program program(arch.chip().core_count);
  program.cores[0] = isa::assemble(source, registry ? *registry : isa::Registry::builtin());
  for (std::int64_t c = 1; c < arch.chip().core_count; ++c) {
    program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
  }
  program.batch = 0;
  program.global_image = std::move(global_image);
  SimOptions options;
  options.functional = true;
  options.registry = registry;
  Simulator simulator(arch, options);
  const SimReport report = simulator.run(program, {});
  if (out_program != nullptr) *out_program = program;
  return report;
}

/// Runs core 0 code that stores results to global memory via MEM_CPY, then
/// reads back `n` bytes at `offset` using the simulator's output accessor.
std::vector<std::uint8_t> run_and_read_global(const arch::ArchConfig& arch,
                                              const std::string& source,
                                              std::int64_t offset, std::int64_t n) {
  isa::Program program(arch.chip().core_count);
  program.cores[0] = isa::assemble(source);
  for (std::int64_t c = 1; c < arch.chip().core_count; ++c) {
    program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
  }
  program.batch = 1;
  program.global_image.assign(4096, 0);
  program.output_global_offset = static_cast<std::uint32_t>(offset);
  program.output_bytes_per_image = n;
  SimOptions options;
  options.functional = true;
  Simulator simulator(arch, options);
  simulator.run(program, {std::vector<std::uint8_t>{}});
  return simulator.output(program, 0);
}

// --- scalar semantics ----------------------------------------------------------

TEST(SimScalarTest, AluAndBranches) {
  // Compute 10 iterations of x += 3, write the result to global[0..4).
  const char* source = R"(
      G_LI R4, 0        ; x
      G_LI R5, 0        ; i
      G_LI R6, 10
    loop:
      SC_ADDI R4, R4, 3
      SC_ADDI R5, R5, 1
      BLT R5, R6, loop
      G_LI R7, 0
      G_LIH R7, -32768  ; local[0]
      SC_SW R4, R7, 0
      G_LI R8, 0        ; global[0]
      G_LI R9, 4
      MEM_CPY R8, R7, R9
      HALT
  )";
  const auto out = run_and_read_global(small_arch(), source, 0, 4);
  EXPECT_EQ(out[0], 30u);
}

TEST(SimScalarTest, RTypeOps) {
  const char* source = R"(
      G_LI R4, 12
      G_LI R5, 5
      SC_SUB R6, R4, R5     ; 7
      SC_MUL R7, R6, R5     ; 35
      SC_AND R8, R4, R5     ; 4
      SC_OR  R9, R4, R5     ; 13
      SC_SLT R10, R5, R4    ; 1
      SC_ADD R11, R7, R8    ; 39
      G_LI R12, 0
      G_LIH R12, -32768
      SC_SW R11, R12, 0
      SC_SW R9, R12, 4
      SC_SW R10, R12, 8
      G_LI R13, 0
      G_LI R14, 12
      MEM_CPY R13, R12, R14
      HALT
  )";
  const auto out = run_and_read_global(small_arch(), source, 0, 12);
  EXPECT_EQ(out[0], 39u);
  EXPECT_EQ(out[4], 13u);
  EXPECT_EQ(out[8], 1u);
}

TEST(SimScalarTest, R0IsHardwiredZero) {
  const char* source = R"(
      G_LI R0, 55          ; must be ignored
      G_LI R4, 0
      G_LIH R4, -32768
      SC_SW R0, R4, 0
      G_LI R5, 0
      G_LI R6, 4
      MEM_CPY R5, R4, R6
      HALT
  )";
  const auto out = run_and_read_global(small_arch(), source, 0, 4);
  EXPECT_EQ(out[0], 0u);
}

// --- vector semantics ------------------------------------------------------------

TEST(SimVectorTest, FillAddRelu) {
  // a = fill(20); b = fill(-30); c = a+b = -10; relu(c) = 0; also c2 = a+a=40.
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; a @ local 0
      G_LI R5, 64
      G_LIH R5, -32768     ; b @ local 64
      G_LI R6, 128
      G_LIH R6, -32768     ; c @ local 128
      G_LI R7, 16          ; length
      G_LI R8, 20
      VEC_FILL8 R4, R4, R8, R7
      G_LI R9, -30
      VEC_FILL8 R5, R5, R9, R7
      VEC_ADD8 R6, R4, R5, R7
      VEC_RELU8 R6, R6, R0, R7
      G_LI R10, 192
      G_LIH R10, -32768    ; c2 @ local 192
      VEC_ADD8 R10, R4, R4, R7
      G_LI R11, 0
      G_LI R12, 16
      MEM_CPY R11, R6, R12
      G_LI R13, 16
      MEM_CPY R13, R10, R12
      HALT
  )";
  const auto out = run_and_read_global(small_arch(), source, 0, 32);
  EXPECT_EQ(out[0], 0u);    // relu(-10)
  EXPECT_EQ(out[15], 0u);
  EXPECT_EQ(out[16], 40u);  // 20+20
}

TEST(SimVectorTest, QuantAppliesShiftAndZero) {
  // psum (int32) = 1000 each; quant shift 3, zero 2 -> sat(round(1000/8)+2)=127.
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; psum @ 0
      G_LI R5, 8           ; 8 elements
      G_LI R6, 1000
      VEC_FILL32 R4, R4, R6, R5
      G_LI R7, 3
      CIM_CFG S2, R7       ; shift
      G_LI R8, 2
      CIM_CFG S3, R8       ; zero point
      G_LI R9, 64
      G_LIH R9, -32768     ; out @ 64
      VEC_QUANT R9, R4, R0, R5
      G_LI R10, 0
      G_LI R11, 8
      MEM_CPY R10, R9, R11
      HALT
  )";
  const auto out = run_and_read_global(small_arch(), source, 0, 8);
  EXPECT_EQ(static_cast<std::int8_t>(out[0]), 127);
}

// --- CIM unit ----------------------------------------------------------------------

TEST(SimCimTest, MvmMatchesManualDotProduct) {
  // Weight tile 4x2 stored row-major at global 256, input {1,2,3,4}:
  // col0 = 1+2+3+4 = 10 (weights 1), col1 = 1-2+3-4 = -2 (alternating).
  std::vector<std::uint8_t> image(4096, 0);
  const std::int8_t tile[8] = {1, 1, 1, -1, 1, 1, 1, -1};
  for (int i = 0; i < 8; ++i) image[256 + i] = static_cast<std::uint8_t>(tile[i]);
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; staging @ 0
      G_LI R5, 256
      G_LI R6, 8
      MEM_CPY R4, R5, R6   ; tile -> staging
      G_LI R7, 4
      CIM_CFG S0, R7       ; rows = 4
      G_LI R8, 2
      CIM_CFG S1, R8       ; cols = 2
      G_LI R9, 3
      CIM_LOAD R4, R9      ; into MG 3
      G_LI R10, 64
      G_LIH R10, -32768    ; input @ 64
      G_LI R11, 1
      SC_SW R11, R10, 0    ; bytes 1,0,0,0 -> in[0]=1
      G_LI R12, 64
      G_LIH R12, -32768
      SC_ADDI R12, R12, 1
      G_LI R13, 2
      ; write 2,3,4 one byte apart using fills of length 1
      VEC_FILL8 R12, R12, R13, R11
      SC_ADDI R12, R12, 1
      G_LI R14, 3
      VEC_FILL8 R12, R12, R14, R11
      SC_ADDI R12, R12, 1
      G_LI R15, 4
      VEC_FILL8 R12, R12, R15, R11
      G_LI R16, 128
      G_LIH R16, -32768    ; psum @ 128
      CIM_MVM R10, R16, R9, 0
      G_LI R17, 0
      G_LI R18, 8
      MEM_CPY R17, R16, R18
      HALT
  )";
  // Run with the weight image installed.
  isa::Program program(small_arch().chip().core_count);
  program.cores[0] = isa::assemble(source);
  for (std::int64_t c = 1; c < 4; ++c) {
    program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
  }
  program.batch = 0;
  program.global_image = image;
  SimOptions options;
  options.functional = true;
  Simulator simulator(small_arch(), options);
  simulator.run(program, {});
  program.output_global_offset = 0;
  program.output_bytes_per_image = 8;
  program.batch = 1;
  const auto result = simulator.output(program, 0);
  const auto read32 = [&](int i) {
    std::int32_t v = 0;
    std::memcpy(&v, result.data() + 4 * i, 4);
    return v;
  };
  EXPECT_EQ(read32(0), 10);
  EXPECT_EQ(read32(1), -2);
}

TEST(SimCimTest, MvmAccumulateFlag) {
  std::vector<std::uint8_t> image(4096, 0);
  image[256] = 2;  // 1x1 tile, weight 2
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 256
      G_LI R6, 1
      MEM_CPY R4, R5, R6
      CIM_CFG S0, R6       ; rows 1
      CIM_CFG S1, R6       ; cols 1
      G_LI R7, 0
      CIM_LOAD R4, R7
      G_LI R8, 64
      G_LIH R8, -32768
      G_LI R9, 3
      VEC_FILL8 R8, R8, R9, R6   ; input = 3
      G_LI R10, 128
      G_LIH R10, -32768
      CIM_MVM R8, R10, R7, 0     ; psum = 6
      CIM_MVM R8, R10, R7, 1     ; psum += 6 -> 12
      G_LI R11, 0
      G_LI R12, 4
      MEM_CPY R11, R10, R12
      HALT
  )";
  isa::Program program(4);
  program.cores[0] = isa::assemble(source);
  for (int c = 1; c < 4; ++c) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 1;
  program.global_image = image;
  program.output_global_offset = 0;
  program.output_bytes_per_image = 4;
  SimOptions options;
  options.functional = true;
  Simulator simulator(small_arch(), options);
  simulator.run(program, {std::vector<std::uint8_t>{}});
  const auto out = simulator.output(program, 0);
  EXPECT_EQ(out[0], 12u);
}

// --- communication ----------------------------------------------------------------------

TEST(SimCommTest, SendRecvRendezvous) {
  // Core 0 sends 8 bytes of 7s to core 3; core 3 receives and writes global.
  const arch::ArchConfig arch = small_arch();
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 7
      VEC_FILL8 R4, R4, R6, R5
      G_LI R7, 3           ; destination core
      SEND R4, R5, R7, 5   ; tag 5
      HALT
  )");
  program.cores[3] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 0           ; source core
      RECV R4, R5, R6, 5
      G_LI R7, 16          ; global[16]
      MEM_CPY R7, R4, R5
      HALT
  )");
  for (int c : {1, 2}) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 1;
  program.global_image.assign(64, 0);
  program.output_global_offset = 16;
  program.output_bytes_per_image = 8;
  SimOptions options;
  options.functional = true;
  Simulator simulator(arch, options);
  const SimReport report = simulator.run(program, {std::vector<std::uint8_t>{}});
  const auto out = simulator.output(program, 0);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[7], 7u);
  EXPECT_GT(report.cycles, 0);
}

TEST(SimCommTest, RecvBlocksUntilSend) {
  // The receiver reaches RECV long before the sender sends; the kernel must
  // suspend and resume it (no deadlock, correct data).
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0           ; long delay loop
      G_LI R5, 200
    spin:
      SC_ADDI R4, R4, 1
      BLT R4, R5, spin
      G_LI R6, 0
      G_LIH R6, -32768
      G_LI R7, 4
      G_LI R8, 9
      VEC_FILL8 R6, R6, R8, R7
      G_LI R9, 1
      SEND R6, R7, R9, 0
      HALT
  )");
  program.cores[1] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 4
      G_LI R6, 0
      RECV R4, R5, R6, 0
      G_LI R7, 0
      MEM_CPY R7, R4, R5
      HALT
  )");
  for (int c : {2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 1;
  program.global_image.assign(16, 0);
  program.output_bytes_per_image = 4;
  SimOptions options;
  options.functional = true;
  Simulator simulator(small_arch(), options);
  const SimReport report = simulator.run(program, {std::vector<std::uint8_t>{}});
  EXPECT_GT(report.cycles, 200);  // receiver waited for the slow sender
  EXPECT_EQ(simulator.output(program, 0)[0], 9u);
}

TEST(SimCommTest, RecvSizeMismatchFails) {
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 1
      SEND R4, R5, R6, 0
      HALT
  )");
  program.cores[1] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 4           ; expects 4, sender sent 8
      G_LI R6, 0
      RECV R4, R5, R6, 0
      HALT
  )");
  for (int c : {2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  SimOptions options;
  Simulator simulator(small_arch(), options);
  EXPECT_THROW(simulator.run(program, {}), Error);
}

TEST(SimCommTest, DeadlockDetected) {
  isa::Program program(4);
  // Core 0 waits forever for a message nobody sends.
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 4
      G_LI R6, 1
      RECV R4, R5, R6, 0
      HALT
  )");
  for (int c : {1, 2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  Simulator simulator(small_arch(), {});
  EXPECT_THROW(simulator.run(program, {}), Error);
}

TEST(SimDiagnosticsTest, DeadlockNamesTheBlockedCores) {
  // Core 2 blocks on a message that never comes; the failure must say it is
  // a deadlock and pinpoint the blocked core's pc/time so multi-core hangs
  // are debuggable from the exception alone.
  isa::Program program(4);
  program.cores[2] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 4
      G_LI R6, 0
      RECV R4, R5, R6, 3
      HALT
  )");
  for (int c : {0, 1, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  Simulator simulator(small_arch(), {});
  try {
    simulator.run(program, {});
    FAIL() << "expected a deadlock error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("core 2"), std::string::npos) << what;
    EXPECT_NE(what.find("pc="), std::string::npos) << what;
    // Halted cores are not part of the diagnosis.
    EXPECT_EQ(what.find("core 0"), std::string::npos) << what;
  }
}

TEST(SimDiagnosticsTest, WatchdogExpiryIsReported) {
  // An infinite loop must trip the max_cycles watchdog, not hang the kernel,
  // and the message must name the watchdog and the spinning core.
  isa::Program program(4);
  program.cores[1] = isa::assemble(R"(
    spin:
      SC_ADDI R4, R4, 1
      JMP spin
  )");
  for (int c : {0, 2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  SimOptions options;
  options.max_cycles = 5000;
  Simulator simulator(small_arch(), options);
  try {
    simulator.run(program, {});
    FAIL() << "expected a watchdog error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    EXPECT_NE(what.find("core 1"), std::string::npos) << what;
  }
}

TEST(SimDiagnosticsTest, WatchdogFiresUnderAnyLookahead) {
  // A runaway core never blocks, so it only ever leaves the run-to-block
  // phase through the per-step watchdog — which must fire both under
  // unbounded run-ahead (lookahead = 0, the default) and under a small
  // run-ahead cap (the core re-enters the loop every horizon).
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
    spin:
      SC_ADDI R4, R4, 1
      JMP spin
  )");
  for (int c : {1, 2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  for (std::int64_t lookahead : {std::int64_t{0}, std::int64_t{64}}) {
    SimOptions options;
    options.max_cycles = 2000;
    options.lookahead = lookahead;
    Simulator simulator(small_arch(), options);
    EXPECT_THROW(simulator.run(program, {}), Error) << "lookahead=" << lookahead;
  }
}

TEST(SimCommTest, BarrierSynchronizesAllCores) {
  // Core 0 spins before the barrier; everyone's post-barrier time >= spin.
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LI R5, 300
    spin:
      SC_ADDI R4, R4, 1
      BLT R4, R5, spin
      BARRIER 0
      HALT
  )");
  for (int c : {1, 2, 3}) {
    program.cores[c] = isa::assemble("BARRIER 0\nHALT");
  }
  Simulator simulator(small_arch(), {});
  const SimReport report = simulator.run(program, {});
  for (const CoreStats& core : report.cores) {
    EXPECT_GE(core.halt_cycle, 300);
  }
}

// --- timing properties ----------------------------------------------------------------------

TEST(SimTimingTest, MvmsOnDifferentMgsOverlap) {
  // Two MVMs on different MGs overlap; on the same MG they serialize.
  const arch::ArchConfig arch = small_arch();
  auto run_pair = [&](bool same_mg) {
    const std::string mg2 = same_mg ? "R9" : "R10";
    const std::string source = std::string(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R7, 512
      CIM_CFG S0, R7
      G_LI R8, 64
      CIM_CFG S1, R8
      G_LI R9, 0
      G_LI R10, 1
      CIM_LOAD R4, R9
      CIM_LOAD R4, R10
      G_LI R11, 1024
      G_LIH R11, -32768
      G_LI R12, 8192
      G_LIH R12, -32768
      G_LI R13, 16384
      G_LIH R13, -32768
      CIM_MVM R11, R12, R9, 0
      CIM_MVM R11, R13, )") + mg2 + R"(, 0
      HALT
  )";
    return run_core0(arch, source).cycles;
  };
  EXPECT_LT(run_pair(false), run_pair(true));
}

TEST(SimTimingTest, DependentVectorOpWaitsForMvm) {
  // VEC_QUANT reading the psum an MVM writes must start after the MVM
  // completes (memory-granule dependency).
  const arch::ArchConfig arch = small_arch();
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R7, 512
      CIM_CFG S0, R7
      G_LI R8, 64
      CIM_CFG S1, R8
      G_LI R9, 0
      CIM_LOAD R4, R9
      G_LI R11, 1024
      G_LIH R11, -32768
      G_LI R12, 8192
      G_LIH R12, -32768
      CIM_MVM R11, R12, R9, 0
      G_LI R13, 2
      CIM_CFG S2, R13
      CIM_CFG S3, R0
      G_LI R14, 16384
      G_LIH R14, -32768
      VEC_QUANT R14, R12, R0, R8
      HALT
  )";
  const SimReport report = run_core0(arch, source);
  // Load (512 rows x 64 B/cycle = 512 cycles) + MVM + quant must all stack.
  EXPECT_GT(report.cycles, 512 + 8);
  EXPECT_GT(report.energy.cim, 0);
  EXPECT_GT(report.energy.vector_unit, 0);
}

TEST(SimTimingTest, EnergyCategoriesPopulated) {
  const SimReport report = run_core0(small_arch(), R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 64
      G_LI R6, 3
      VEC_FILL8 R4, R4, R6, R5
      G_LI R7, 0
      MEM_CPY R7, R4, R5
      HALT
  )", nullptr, nullptr, std::vector<std::uint8_t>(256, 0));
  EXPECT_GT(report.energy.vector_unit, 0);
  EXPECT_GT(report.energy.global_mem, 0);
  EXPECT_GT(report.energy.noc, 0);       // global access traverses the mesh
  EXPECT_GT(report.energy.leakage, 0);
  EXPECT_GT(report.energy.instruction, 0);
  EXPECT_GT(report.energy.total(), report.energy.dynamic_total());
}

// --- custom instructions -----------------------------------------------------------------------

TEST(SimCustomTest, ExecutesRegisteredCallback) {
  isa::Registry registry = isa::Registry::with_builtins();
  isa::InstructionDescriptor desc;
  desc.mnemonic = "VEC_INC8";
  desc.opcode = 0x32;
  desc.format = isa::Format::kVector;
  desc.unit = isa::UnitKind::kVector;
  desc.timing = isa::TimingSpec{2, 16, 0};
  desc.energy = isa::EnergySpec{1.0, 0.5};
  desc.execute = [](const isa::Instruction& inst, isa::CustomExecContext& ctx) {
    const auto dst = static_cast<std::uint32_t>(ctx.reg(inst.rd)) & 0x7FFFFFFFu;
    const auto src = static_cast<std::uint32_t>(ctx.reg(inst.rs)) & 0x7FFFFFFFu;
    for (std::int32_t i = 0; i < ctx.reg(inst.re); ++i) {
      ctx.store_byte(dst + static_cast<std::uint32_t>(i),
                     static_cast<std::uint8_t>(ctx.load_byte(src + static_cast<std::uint32_t>(i)) + 1));
    }
  };
  registry.register_instruction(std::move(desc));

  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 10
      VEC_FILL8 R4, R4, R6, R5
      G_LI R7, 64
      G_LIH R7, -32768
      VEC_INC8 R7, R4, R0, R5
      G_LI R8, 0
      MEM_CPY R8, R7, R5
      HALT
  )";
  isa::Program program(4);
  program.cores[0] = isa::assemble(source, registry);
  for (int c = 1; c < 4; ++c) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 1;
  program.global_image.assign(16, 0);
  program.output_bytes_per_image = 8;
  SimOptions options;
  options.functional = true;
  options.registry = &registry;
  Simulator simulator(small_arch(), options);
  simulator.run(program, {std::vector<std::uint8_t>{}});
  EXPECT_EQ(simulator.output(program, 0)[0], 11u);
}

// --- NoC model ---------------------------------------------------------------------------------

TEST(NocTest, LatencyGrowsWithDistanceAndSize) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const arch::EnergyModel energy(arch);
  Noc noc(arch, energy);
  const std::int64_t near = noc.transfer(0, 1, 64, 0);
  noc.reset();
  const std::int64_t far = noc.transfer(0, 63, 64, 0);
  EXPECT_GT(far, near);
  noc.reset();
  const std::int64_t small = noc.transfer(0, 1, 8, 0);
  noc.reset();
  const std::int64_t big = noc.transfer(0, 1, 8 * 100, 0);
  EXPECT_GT(big, small);
}

TEST(NocTest, ContentionSerializesSharedLinks) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const arch::EnergyModel energy(arch);
  Noc noc(arch, energy);
  const std::int64_t first = noc.transfer(0, 7, 800, 0);
  const std::int64_t second = noc.transfer(0, 7, 800, 0);  // same path, same time
  EXPECT_GT(second, first);  // back-pressure on the shared links
  noc.reset();
  const std::int64_t disjoint = noc.transfer(56, 63, 800, 0);  // different row
  EXPECT_EQ(disjoint, first);  // same distance, no contention
}

TEST(NocTest, EnergyCountsFlitHops) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const arch::EnergyModel energy(arch);
  Noc noc(arch, energy);
  noc.transfer(0, 1, 64, 0);
  const std::int64_t hops1 = noc.flit_hops();
  noc.transfer(0, 3, 64, 0);
  EXPECT_EQ(noc.flit_hops() - hops1, 3 * 8);  // 3 hops x 8 flits
  EXPECT_GT(noc.energy_pj(), 0);
}

// --- re-entrancy: concurrent Simulator instances ------------------------------

// The DSE engine runs one Simulator per worker thread, often sharing one
// cached immutable Program. Simulators must keep all mutable state inside the
// instance: concurrent runs have to reproduce serial reports bit-for-bit.
TEST(SimConcurrencyTest, ConcurrentSimulatorsMatchSerialRuns) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 2;
  copt.materialize_data = false;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

  auto simulate = [&]() {
    Simulator simulator(arch, SimOptions{});
    return simulator.run(compiled.program);
  };

  const std::string serial_a = simulate().summary();
  const std::string serial_b = simulate().summary();
  ASSERT_EQ(serial_a, serial_b);

  std::string concurrent_a, concurrent_b;
  std::thread ta([&] { concurrent_a = simulate().summary(); });
  std::thread tb([&] { concurrent_b = simulate().summary(); });
  ta.join();
  tb.join();
  EXPECT_EQ(concurrent_a, serial_a);
  EXPECT_EQ(concurrent_b, serial_a);
}

// Distinct architectures in flight at once (the DSE steady state): each
// simulator owns a copy of its config, so a worker's temporary ArchConfig
// cannot dangle or bleed into the other run.
TEST(SimConcurrencyTest, ConcurrentDistinctArchesMatchSerialRuns) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();

  auto evaluate = [&](std::int64_t mg, std::int64_t flit) {
    arch::ChipParams chip = base.chip();
    arch::UnitParams unit = base.unit();
    unit.macros_per_group = mg;
    chip.noc_flit_bytes = flit;
    const arch::ArchConfig arch(chip, base.core(), unit, base.energy());
    compiler::CompileOptions copt;
    copt.strategy = compiler::Strategy::kGeneric;
    copt.batch = 2;
    copt.materialize_data = false;
    const compiler::CompileResult compiled = compiler::compile(model, arch, copt);
    Simulator simulator(arch, SimOptions{});
    return simulator.run(compiled.program).summary();
  };

  const std::string serial_narrow = evaluate(4, 8);
  const std::string serial_wide = evaluate(16, 16);

  std::string concurrent_narrow, concurrent_wide;
  std::thread ta([&] { concurrent_narrow = evaluate(4, 8); });
  std::thread tb([&] { concurrent_wide = evaluate(16, 16); });
  ta.join();
  tb.join();
  EXPECT_EQ(concurrent_narrow, serial_narrow);
  EXPECT_EQ(concurrent_wide, serial_wide);
}

// --- parallel event scheduler: determinism guarantee ---------------------------

// SimOptions::threads must never change a report: the event scheduler only
// shards the core-private run-to-block phase; every shared-fabric event
// commits serially in strict (time, core, program-order) order. Byte-compare
// the full JSON report (every counter, energy double, and event-queue
// counter) across thread counts for every model in models/.
TEST(SimParallelTest, EveryModelIsByteIdenticalAcrossThreadCounts) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  models::ModelOptions mopt;
  mopt.input_hw = 64;  // full topologies, test-sized images
  std::vector<std::string> names = models::benchmark_suite();
  names.push_back("micro");
  for (const std::string& name : names) {
    const graph::Graph model = models::build_model(name, mopt);
    compiler::CompileOptions copt;
    copt.strategy = compiler::Strategy::kDpOptimized;
    copt.batch = 1;  // batch 2 exceeds vgg19's spill budget at 64 px
    copt.materialize_data = false;
    const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

    std::string baseline;
    for (std::int64_t threads : {1, 2, 8}) {
      SimOptions options;
      options.threads = threads;
      Simulator simulator(arch, options);
      const std::string report =
          simulator.run(compiled.program).to_json().dump();
      if (threads == 1) {
        baseline = report;
      } else {
        EXPECT_EQ(report, baseline)
            << name << ": threads=" << threads << " diverged from the serial kernel";
      }
    }
  }
}

// Functional mode: both the report and every output byte must match.
TEST(SimParallelTest, FunctionalOutputsMatchAcrossThreadCounts) {
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  const graph::Graph model = models::micro_cnn({});
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 3;
  copt.materialize_data = true;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

  std::vector<std::vector<std::uint8_t>> inputs;
  const graph::Shape in_shape = model.node(model.inputs().front()).out_shape;
  for (std::int64_t img = 0; img < copt.batch; ++img) {
    inputs.push_back(
        cimflow::tensor_bytes(graph::random_tensor(in_shape, 21 + static_cast<std::uint64_t>(img))));
  }

  std::string baseline_report;
  std::vector<std::vector<std::uint8_t>> baseline_outputs;
  for (std::int64_t threads : {1, 2, 8}) {
    SimOptions options;
    options.functional = true;
    options.threads = threads;
    Simulator simulator(arch, options);
    const std::string report = simulator.run(compiled.program, inputs).to_json().dump();
    std::vector<std::vector<std::uint8_t>> outputs;
    for (std::int64_t img = 0; img < copt.batch; ++img) {
      outputs.push_back(simulator.output(compiled.program, img));
    }
    if (threads == 1) {
      baseline_report = report;
      baseline_outputs = outputs;
    } else {
      EXPECT_EQ(report, baseline_report) << "threads=" << threads;
      EXPECT_EQ(outputs, baseline_outputs) << "threads=" << threads;
    }
  }
}

// --- event-ordering determinism ------------------------------------------------

/// Full report dump with the lookahead-variant telemetry zeroed. Latency,
/// energy, and per-core counters must be invariant under SimOptions::lookahead;
/// max_queue_depth / idle_cycles_skipped legitimately depend on how far cores
/// run ahead of the committed frontier, so lookahead sweeps compare
/// everything but the scheduler block (thread sweeps compare all of it).
std::string metrics_dump(SimReport report) {
  report.scheduler = SchedulerStats{};
  return report.to_json().dump();
}

// A SEND/RECV pair exercised across the run-ahead extremes: lookahead = 1
// (cores barely outrun the committed frontier), a small cap, and unbounded
// run-to-block (the default). A single transfer has no contention to order,
// so the metrics must be identical at every (lookahead, threads) combination.
TEST(SimEventOrderTest, RendezvousIsLookaheadInvariantWithoutContention) {
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 7
      VEC_FILL8 R4, R4, R6, R5
      G_LI R7, 3
      SEND R4, R5, R7, 5
      HALT
  )");
  program.cores[3] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 0
      RECV R4, R5, R6, 5
      HALT
  )");
  for (int c : {1, 2}) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 0;

  std::string baseline;
  for (std::int64_t lookahead :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{16}}) {
    std::string thread_baseline;
    for (std::int64_t threads : {1, 2}) {
      SimOptions options;
      options.functional = true;
      options.lookahead = lookahead;
      options.threads = threads;
      Simulator simulator(small_arch(), options);
      const SimReport report = simulator.run(program, {});
      if (baseline.empty()) {
        baseline = metrics_dump(report);
      } else {
        EXPECT_EQ(metrics_dump(report), baseline)
            << "lookahead=" << lookahead << " threads=" << threads;
      }
      // Within one lookahead the whole report — event-queue counters
      // included — is thread-invariant.
      const std::string full = report.to_json().dump();
      if (thread_baseline.empty()) {
        thread_baseline = full;
      } else {
        EXPECT_EQ(full, thread_baseline) << "lookahead=" << lookahead;
      }
    }
  }
}

// Three cores SEND to core 3 from instruction-for-instruction identical code,
// so all three fabric requests carry the same issue timestamp — the same-cycle
// NoC contention case the (time, core, program-order) event key exists for.
// The receiver drains them in reverse core order, so two messages sit
// delivered-but-unconsumed while it blocks on the third. Byte-identical at
// 1/2/8 threads, event-queue counters included.
TEST(SimEventOrderTest, SameCycleContentionResolvesIdenticallyAcrossThreads) {
  isa::Program program(4);
  for (int core : {0, 1, 2}) {
    program.cores[static_cast<std::size_t>(core)] = isa::assemble(strprintf(R"(
        G_LI R4, 0
        G_LIH R4, -32768
        G_LI R5, 16
        G_LI R6, %d
        VEC_FILL8 R4, R4, R6, R5
        G_LI R7, 3
        SEND R4, R5, R7, %d
        HALT
    )", 40 + core, core));
  }
  program.cores[3] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 16
      G_LI R6, 2
      RECV R4, R5, R6, 2
      G_LI R6, 1
      RECV R4, R5, R6, 1
      G_LI R6, 0
      RECV R4, R5, R6, 0
      HALT
  )");
  program.batch = 0;

  std::string baseline;
  for (std::int64_t threads : {1, 2, 8}) {
    SimOptions options;
    options.functional = true;
    options.threads = threads;
    Simulator simulator(small_arch(), options);
    const SimReport report = simulator.run(program, {});
    EXPECT_GT(report.scheduler.events_dispatched, 0);
    const std::string dump = report.to_json().dump();
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(dump, baseline) << "threads=" << threads;
    }
  }
}

// All four cores arrive at BARRIER 0 on the same cycle (identical code) —
// the exact-tie release — then core 0 straggles into BARRIER 1 hundreds of
// cycles late. Both releases must land every core on one cycle, the parked
// cores' wait must be skipped (not stepped through), and the report must be
// byte-identical at any thread count.
TEST(SimEventOrderTest, BarrierReleaseTiesAreDeterministic) {
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      BARRIER 0
      G_LI R4, 0
      G_LI R5, 250
    spin:
      SC_ADDI R4, R4, 1
      BLT R4, R5, spin
      BARRIER 1
      HALT
  )");
  for (int c : {1, 2, 3}) {
    program.cores[static_cast<std::size_t>(c)] =
        isa::assemble("BARRIER 0\nBARRIER 1\nHALT");
  }

  std::string baseline;
  for (std::int64_t threads : {1, 2, 8}) {
    SimOptions options;
    options.threads = threads;
    Simulator simulator(small_arch(), options);
    const SimReport report = simulator.run(program, {});
    for (const CoreStats& core : report.cores) {
      EXPECT_GE(core.halt_cycle, 250);
    }
    // Cores 1-3 park at BARRIER 1 while core 0 spins; the event kernel
    // credits that idle time instead of stepping through it.
    EXPECT_GT(report.scheduler.idle_cycles_skipped, 0);
    const std::string dump = report.to_json().dump();
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(dump, baseline) << "threads=" << threads;
    }
  }
}

// Sender and receiver reach their SEND/RECV on exactly the same cycle
// (instruction-for-instruction identical preambles) — the rendezvous tie.
// The received bytes must overwrite the receiver's own fill, and the report
// must be byte-identical at every thread count.
TEST(SimEventOrderTest, IdenticalTimestampRendezvousIsExact) {
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 7
      VEC_FILL8 R4, R4, R6, R5
      G_LI R7, 1
      SEND R4, R5, R7, 9
      HALT
  )");
  program.cores[1] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 8
      G_LI R6, 3
      VEC_FILL8 R4, R4, R6, R5
      G_LI R6, 0
      RECV R4, R5, R6, 9
      G_LI R7, 0
      MEM_CPY R7, R4, R5
      HALT
  )");
  for (int c : {2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 1;
  program.global_image.assign(16, 0);
  program.output_bytes_per_image = 8;

  std::string baseline;
  for (std::int64_t threads : {1, 2, 8}) {
    SimOptions options;
    options.functional = true;
    options.threads = threads;
    Simulator simulator(small_arch(), options);
    const SimReport report = simulator.run(program, {std::vector<std::uint8_t>{}});
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(simulator.output(program, 0)[static_cast<std::size_t>(i)], 7u) << i;
    }
    const std::string dump = report.to_json().dump();
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(dump, baseline) << "threads=" << threads;
    }
  }
}

// A receiver parked at RECV for hundreds of cycles while the sender spins:
// the blocked core's clock must jump to the delivery (idle-cycle skipping,
// visible in the scheduler counters), not step through the wait, and the
// late delivery must not distort timing or data.
TEST(SimEventOrderTest, LateSenderWakesParkedReceiver) {
  isa::Program program(4);
  program.cores[0] = isa::assemble(R"(
      G_LI R4, 0
      G_LI R5, 200
    spin:
      SC_ADDI R4, R4, 1
      BLT R4, R5, spin
      G_LI R6, 0
      G_LIH R6, -32768
      G_LI R7, 4
      G_LI R8, 9
      VEC_FILL8 R6, R6, R8, R7
      G_LI R9, 1
      SEND R6, R7, R9, 0
      HALT
  )");
  program.cores[1] = isa::assemble(R"(
      G_LI R4, 0
      G_LIH R4, -32768
      G_LI R5, 4
      G_LI R6, 0
      RECV R4, R5, R6, 0
      G_LI R7, 0
      MEM_CPY R7, R4, R5
      HALT
  )");
  for (int c : {2, 3}) program.cores[c].code.push_back(isa::Instruction::halt());
  program.batch = 1;
  program.global_image.assign(16, 0);
  program.output_bytes_per_image = 4;

  std::string baseline;
  for (std::int64_t threads : {1, 2, 8}) {
    SimOptions options;
    options.functional = true;
    options.threads = threads;
    Simulator simulator(small_arch(), options);
    const SimReport report = simulator.run(program, {std::vector<std::uint8_t>{}});
    EXPECT_GT(report.cycles, 200);  // receiver waited for the slow sender...
    EXPECT_GT(report.scheduler.idle_cycles_skipped, 150);  // ...without stepping
    EXPECT_EQ(simulator.output(program, 0)[0], 9u);
    const std::string dump = report.to_json().dump();
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(dump, baseline) << "threads=" << threads;
    }
  }
}

// --- shared program images (ROADMAP "simulator memory") ------------------------

// Concurrent functional simulators of one compiled program must share the
// weight-bearing global image: each instance's private overlay covers only
// what it wrote (staging + activations), so an 8-way sweep's image memory is
// one base plus eight small overlays instead of eight full copies.
TEST(SimMemoryTest, ConcurrentSimulatorsShareTheProgramImage) {
  models::ModelOptions mopt;
  mopt.input_hw = 64;
  const graph::Graph model = models::resnet18(mopt);
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 1;  // keeps the 8-way functional run fast under sanitizers
  copt.materialize_data = true;
  const auto compiled = std::make_shared<const compiler::CompileResult>(
      compiler::compile(model, arch, copt));

  std::vector<std::vector<std::uint8_t>> inputs;
  const graph::Shape in_shape = model.node(model.inputs().front()).out_shape;
  for (std::int64_t img = 0; img < copt.batch; ++img) {
    inputs.push_back(
        cimflow::tensor_bytes(graph::random_tensor(in_shape, 7 + static_cast<std::uint64_t>(img))));
  }

  constexpr int kSimulators = 8;
  std::vector<SimMemoryStats> stats(kSimulators);
  std::vector<std::vector<std::uint8_t>> outputs(kSimulators);
  {
    std::vector<std::thread> pool;
    for (int i = 0; i < kSimulators; ++i) {
      pool.emplace_back([&, i] {
        SimOptions options;
        options.functional = true;
        Simulator simulator(arch, options);
        simulator.run(compiled->program, inputs, compiled);
        stats[i] = simulator.memory_stats();
        outputs[i] = simulator.output(compiled->program, 0);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  const auto base = static_cast<std::int64_t>(compiled->program.global_image.size());
  std::int64_t total_overlay = 0;
  for (int i = 0; i < kSimulators; ++i) {
    EXPECT_EQ(stats[i].global_base_bytes, base);
    // The overlay covers writes only — bounded by the non-weight share of the
    // image (staging + activations) plus page-granularity slack, far below a
    // full copy.
    EXPECT_GT(stats[i].global_overlay_bytes, 0);
    EXPECT_LT(stats[i].global_overlay_bytes, base / 4) << "simulator " << i;
    EXPECT_EQ(outputs[i], outputs[0]) << "simulator " << i;
    total_overlay += stats[i].global_overlay_bytes;
  }
  // Sublinear residency: eight sims resident together cost one base + small
  // overlays, well under the eight full copies the old per-Impl copy kept.
  EXPECT_LT(base + total_overlay, kSimulators * base / 2);
}

}  // namespace
}  // namespace cimflow::sim
