// Hot-path equivalence tests: the pointer-resolved functional kernels
// (exec_vec / exec_mvm fast paths, GlobalImage span pinning) against the
// retained byte-routed reference implementations — randomized differential
// runs across the edge shapes that make span resolution interesting (spans
// straddling the 64 KB page boundary, unmaterialized pages, beyond-base zero
// regions, accumulate mode, zero-length ops) — plus the decoded-program
// sharing contract mirroring the GlobalImage residency test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cimflow/compiler/compiler.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/isa/assembler.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/sim/decoded.hpp"
#include "cimflow/sim/kernels.hpp"
#include "cimflow/sim/kernels_dispatch.hpp"
#include "cimflow/sim/memory.hpp"
#include "cimflow/sim/simulator.hpp"

namespace cimflow::sim {
namespace {

constexpr std::int64_t kPage = GlobalImage::kPageBytes;

arch::ArchConfig small_arch() {
  arch::ChipParams chip;
  chip.core_count = 4;
  chip.mesh_cols = 2;
  chip.global_mem_banks = 2;
  return arch::ArchConfig(chip, arch::CoreParams{}, arch::UnitParams{},
                          arch::EnergyParams{});
}

std::vector<std::uint8_t> random_image(std::size_t n, unsigned seed) {
  std::minstd_rand rng(seed);
  std::vector<std::uint8_t> image(n);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng() & 0xFF);
  return image;
}

// --- GlobalImage span pinning ------------------------------------------------

TEST(GlobalImageSpanTest, ReadsResolveThroughBaseAndPages) {
  const std::vector<std::uint8_t> base = random_image(static_cast<std::size_t>(kPage) + 512, 3);
  GlobalImage image;
  image.bind(&base, nullptr);

  // Unmaterialized single page: the span IS the base.
  const std::uint8_t* span = image.span_for_read(100, 64);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span, base.data() + 100);

  // Unmaterialized multi-page span still inside the base: also the base.
  span = image.span_for_read(kPage - 32, 64);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span, base.data() + kPage - 32);

  // Materializing page 0 redirects single-page spans to the copy...
  image.store_u8(10, 0xAB);
  span = image.span_for_read(100, 64);
  ASSERT_NE(span, nullptr);
  EXPECT_NE(span, base.data() + 100);
  EXPECT_EQ(span[0], base[100]);  // copy-on-write preserved the bytes

  // ...and a span crossing out of the materialized page cannot be pinned.
  EXPECT_EQ(image.span_for_read(kPage - 32, 64), nullptr);

  // read_bytes (the byte path) still serves the unresolvable layout.
  std::vector<std::uint8_t> out(64);
  image.read_bytes(kPage - 32, 64, out.data());
  EXPECT_EQ(std::memcmp(out.data(), base.data() + kPage - 32, 64), 0);
}

TEST(GlobalImageSpanTest, WriteSpansPinSinglePagesOnly) {
  const std::vector<std::uint8_t> base = random_image(static_cast<std::size_t>(2 * kPage), 5);
  GlobalImage image;
  image.bind(&base, nullptr);

  std::uint8_t* span = image.span_for_write(200, 64);
  ASSERT_NE(span, nullptr);
  span[0] = 0x5A;
  EXPECT_EQ(image.load_u8(200), 0x5A);
  EXPECT_EQ(base[200] == 0x5A, false) << "write must land in the overlay, not the base";

  // Page-crossing writes fall back to the byte path.
  EXPECT_EQ(image.span_for_write(kPage - 8, 16), nullptr);
}

TEST(GlobalImageSpanTest, BeyondBaseZeroRegionIsNotPinnable) {
  const std::vector<std::uint8_t> base = random_image(100, 7);
  GlobalImage image;
  image.bind(&base, nullptr);
  image.ensure_size(kPage + 4096);

  // The zero region past the base has no storage to point into...
  EXPECT_EQ(image.span_for_read(2048, 64), nullptr);
  // ...but the byte path reads zeros, and a write materializes the page so
  // subsequent spans resolve.
  std::vector<std::uint8_t> out(64, 0xFF);
  image.read_bytes(2048, 64, out.data());
  for (std::uint8_t b : out) EXPECT_EQ(b, 0);
  ASSERT_NE(image.span_for_write(2048, 64), nullptr);
  EXPECT_NE(image.span_for_read(2048, 64), nullptr);
}

// --- raw kernel differential: column-strided reference vs row-major ---------

TEST(MvmKernelTest, RowMajorMatchesReferenceAcrossShapes) {
  std::minstd_rand rng(17);
  const struct { std::int64_t rows, cols; } shapes[] = {
      {1, 1}, {7, 3}, {64, 64}, {511, 63}, {512, 256}, {0, 8}, {8, 0}};
  for (const auto& shape : shapes) {
    for (bool accumulate : {false, true}) {
      std::vector<std::int8_t> weights(static_cast<std::size_t>(shape.rows * shape.cols));
      for (auto& w : weights) w = static_cast<std::int8_t>(rng() & 0xFF);
      std::vector<std::uint8_t> in(static_cast<std::size_t>(shape.rows));
      for (auto& v : in) v = static_cast<std::uint8_t>(rng() & 0xFF);
      std::vector<std::uint8_t> out_ref(static_cast<std::size_t>(4 * shape.cols));
      for (auto& v : out_ref) v = static_cast<std::uint8_t>(rng() & 0xFF);
      std::vector<std::uint8_t> out_new = out_ref;

      kernels::mvm_ref(out_ref.data(), in.data(), weights.data(), shape.rows,
                       shape.cols, accumulate);

      std::vector<std::int32_t> row(static_cast<std::size_t>(shape.cols));
      if (accumulate) {
        kernels::load_le32_row(row.data(), out_new.data(), shape.cols);
      }
      kernels::mvm_accumulate(row.data(), in.data(), weights.data(), shape.rows,
                              shape.cols);
      kernels::store_le32_row(out_new.data(), row.data(), shape.cols);

      EXPECT_EQ(out_ref, out_new) << "rows=" << shape.rows << " cols=" << shape.cols
                                  << " accumulate=" << accumulate;
    }
  }
}

// --- end-to-end differential: fast kernels vs SimOptions::reference_kernels --

struct DiffRun {
  std::string report;
  std::vector<std::uint8_t> image;
};

/// Runs `source` on core 0 over `image` twice — pointer kernels and the
/// byte-routed reference — and returns both (report JSON, full image dump).
std::pair<DiffRun, DiffRun> run_both(const std::string& source,
                                     const std::vector<std::uint8_t>& image) {
  std::pair<DiffRun, DiffRun> result;
  for (bool reference : {false, true}) {
    isa::Program program(4);
    program.cores[0] = isa::assemble(source);
    for (int c = 1; c < 4; ++c) {
      program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
    }
    program.batch = 1;
    program.global_image = image;
    program.output_global_offset = 0;
    program.output_bytes_per_image = static_cast<std::int64_t>(image.size());
    SimOptions options;
    options.functional = true;
    options.reference_kernels = reference;
    Simulator simulator(small_arch(), options);
    simulator.run(program, {std::vector<std::uint8_t>{}});
    DiffRun run;
    run.image = simulator.output(program, 0);
    (reference ? result.second : result.first) = std::move(run);
  }
  return result;
}

void expect_equivalent(const std::string& source, const std::vector<std::uint8_t>& image,
                       const char* what) {
  const auto [fast, reference] = run_both(source, image);
  ASSERT_EQ(fast.image.size(), reference.image.size()) << what;
  EXPECT_EQ(fast.image, reference.image) << what;
}

// Global operands straddling the 64 KB page boundary: every span that
// crosses it falls back per-operand while the rest stay pointer-resolved.
TEST(KernelDifferentialTest, VecOpsStraddlingPageBoundary) {
  // dst @ 65400 (crosses 65536 with len 400), a @ 200, b @ 800; then quant
  // reading int32s that straddle the boundary.
  const char* source = R"(
      G_LI R4, -136
      G_LIH R4, 0          ; dst = 65400
      G_LI R5, 200
      G_LI R6, 800
      G_LI R7, 400         ; n
      VEC_ADD8 R4, R5, R6, R7
      VEC_RELU8 R4, R4, R0, R7
      G_LI R8, 3
      CIM_CFG S2, R8
      G_LI R9, 1
      CIM_CFG S3, R9
      G_LI R10, -400
      G_LIH R10, 0         ; a32 = 65136 (4*400 bytes cross the boundary)
      G_LI R11, 2048
      VEC_QUANT R11, R10, R0, R7
      G_LI R12, 100
      VEC_LUT8 R12, R5, R0, R7
      HALT
  )";
  expect_equivalent(source, random_image(2 * kPage, 21), "vec straddle");
}

// MVM with global input straddling the page boundary, output in the second
// page, and a second accumulate pass over the same column row.
TEST(KernelDifferentialTest, MvmGlobalStraddleAndAccumulate) {
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; staging @ local 0
      G_LI R5, 1024
      G_LI R6, 2048        ; 32 x 64 tile @ global 1024
      MEM_CPY R4, R5, R6
      G_LI R7, 32
      CIM_CFG S0, R7       ; rows = 32
      G_LI R8, 64
      CIM_CFG S1, R8       ; cols = 64
      G_LI R9, 1
      CIM_LOAD R4, R9
      G_LI R10, -16
      G_LIH R10, 0         ; input @ 65520 straddles the page boundary
      G_LI R11, -512
      G_LIH R11, 1         ; psum @ 130560 (page 1, 4*64 bytes stay inside)
      CIM_MVM R10, R11, R9, 0
      CIM_MVM R10, R11, R9, 1   ; accumulate pass
      G_LI R12, 8192
      CIM_MVM R10, R12, R9, 1   ; accumulate into untouched page-0 region
      HALT
  )";
  expect_equivalent(source, random_image(3 * kPage, 23), "mvm straddle");
}

// Reads from an unmaterialized beyond-base zero region (the image is
// extended by input staging), zero-length ops, and pool/rowsum shapes.
TEST(KernelDifferentialTest, ZeroRegionsZeroLengthsAndPool) {
  const char* source = R"(
      G_LI R4, 512
      G_LI R5, 100
      G_LI R6, 0           ; n = 0: every op degenerates to a no-op
      VEC_ADD8 R4, R5, R5, R6
      VEC_QUANT R4, R5, R0, R6
      G_LI R7, 0
      G_LIH R7, -32768     ; local 0
      G_LI R8, 3
      CIM_CFG S6, R8       ; kh = 3
      CIM_CFG S7, R8       ; kw = 3
      G_LI R9, 2
      CIM_CFG S8, R9       ; stride = 2
      G_LI R10, 16
      CIM_CFG S9, R10      ; win = 16
      G_LI R11, 4
      CIM_CFG S10, R11     ; channels = 4
      G_LI R12, 2048
      G_LI R13, 4096
      G_LI R14, 640
      MEM_CPY R7, R12, R14 ; window rows -> local
      G_LI R15, 6
      VEC_POOL_MAX R13, R7, R15
      VEC_POOL_AVG R13, R7, R15
      G_LI R16, 64
      CIM_CFG S9, R16      ; pool win doubles as rowsum pixel count
      G_LI R17, 5120
      G_LI R18, 32
      VEC_ROWSUM32 R17, R12, R0, R18
      HALT
  )";
  expect_equivalent(source, random_image(kPage / 4, 29), "pool/zero-length");
}

// Randomized soak: random images and random (aligned) operand placements for
// a fixed op mix, multiple seeds — fast and reference kernels must agree on
// every byte of the final image.
TEST(KernelDifferentialTest, RandomizedVecSoak) {
  for (unsigned seed : {101u, 202u, 303u}) {
    std::minstd_rand rng(seed);
    const std::int64_t n = 64 + static_cast<std::int64_t>(rng() % 512);
    const std::int64_t dst = static_cast<std::int64_t>(rng() % (kPage / 2));
    const std::int64_t a = kPage - 256 - static_cast<std::int64_t>(rng() % 512);
    const std::int64_t b = kPage + 512 + static_cast<std::int64_t>(rng() % 1024);
    const std::string source = std::string("G_LI R4, ") + std::to_string(dst % 32768) +
                               "\nG_LI R5, " + std::to_string(a - kPage) +
                               "\nG_LIH R5, 0" +
                               "\nG_LI R6, " + std::to_string(b - kPage) +
                               "\nG_LIH R6, 1" +
                               "\nG_LI R7, " + std::to_string(n) + R"(
      VEC_ADD8 R4, R5, R6, R7
      VEC_MAX8 R4, R4, R5, R7
      VEC_SUB8 R4, R4, R6, R7
      VEC_COPY8 R5, R4, R0, R7
      HALT
  )";
    expect_equivalent(source, random_image(3 * kPage, seed), "vec soak");
  }
}

// A LUT sitting closer than 256 bytes to the end of local memory: the fast
// path must not fail the run by pinning the full table (the reference only
// touches the bytes actually indexed) — it falls back instead.
TEST(KernelDifferentialTest, LutNearEndOfLocalMemory) {
  // lut @ local 524088 (200 bytes before the 512 KB end); indices stay < 128.
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; a @ local 0
      G_LI R5, 64          ; n
      G_LI R6, 50
      VEC_FILL8 R4, R4, R6, R5
      G_LI R7, -200
      G_LIH R7, -32761     ; lut @ local 524088
      G_LI R8, 128
      G_LI R9, 7
      VEC_FILL8 R7, R7, R9, R8
      CIM_CFG S4, R7
      G_LI R10, 1024
      G_LIH R10, -32768    ; dst @ local 1024
      VEC_LUT8 R10, R4, R0, R5
      G_LI R11, 0
      MEM_CPY R11, R10, R5
      HALT
  )";
  const auto [fast, reference] = run_both(source, std::vector<std::uint8_t>(4096, 0));
  EXPECT_EQ(fast.image, reference.image);
  EXPECT_EQ(fast.image[0], 7u);  // lut[50] = 7
}

// Overlapping MVM input/output ranges (never compiler-emitted) must still
// agree between the paths: the fast kernel detects the alias and delegates
// to the reference's column-interleaved read-modify-write semantics.
TEST(KernelDifferentialTest, MvmOverlappingOperandsMatchReference) {
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; staging @ local 0
      G_LI R5, 1024
      G_LI R6, 128         ; 16 x 8 tile @ global 1024
      MEM_CPY R4, R5, R6
      G_LI R7, 16
      CIM_CFG S0, R7       ; rows = 16
      G_LI R8, 8
      CIM_CFG S1, R8       ; cols = 8
      G_LI R9, 0
      CIM_LOAD R4, R9
      G_LI R10, 1000
      G_LIH R10, -32768    ; input @ local 1000 (overlaps the psum below)
      G_LI R11, 200
      G_LI R12, 16
      MEM_CPY R10, R11, R12
      G_LI R13, 1008
      G_LIH R13, -32768    ; psum @ local 1008..1040 overlaps input 1000..1016
      CIM_MVM R10, R13, R9, 0
      CIM_MVM R10, R13, R9, 1
      G_LI R14, 0
      G_LI R15, 48
      MEM_CPY R14, R10, R15
      HALT
  )";
  expect_equivalent(source, random_image(4096, 31), "mvm overlap");
}

// --- decoded-program sharing (mirrors the GlobalImage residency test) --------

TEST(DecodedProgramTest, ConcurrentSimulatorsShareOneDecode) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  compiler::CompileOptions copt;
  copt.strategy = compiler::Strategy::kDpOptimized;
  copt.batch = 5;  // batch distinct from every other test -> unique program
  copt.materialize_data = false;
  const compiler::CompileResult compiled = compiler::compile(model, arch, copt);

  // Pin the decode the way a DSE cache entry does: one strong reference for
  // the duration of the sweep. Without a pin, a simulator finishing before a
  // late-starting peer could let the weak cache entry expire in between.
  const DecodedCacheStats before = decoded_cache_stats();
  const auto pin = DecodedProgram::shared(compiled.program, isa::Registry::builtin());
  constexpr int kSimulators = 8;
  std::vector<SimMemoryStats> stats(kSimulators);
  {
    std::vector<std::thread> pool;
    for (int i = 0; i < kSimulators; ++i) {
      pool.emplace_back([&, i] {
        Simulator simulator(arch, SimOptions{});
        simulator.run(compiled.program);
        stats[i] = simulator.memory_stats();
      });
    }
    for (std::thread& t : pool) t.join();
  }
  const DecodedCacheStats after = decoded_cache_stats();

  // Exactly one decode was built (for the pin); every simulator shared it.
  EXPECT_EQ(after.builds - before.builds, 1u);
  EXPECT_EQ(after.hits - before.hits, static_cast<std::size_t>(kSimulators));
  for (int i = 0; i < kSimulators; ++i) {
    EXPECT_GT(stats[i].decoded_bytes, 0) << "simulator " << i;
    EXPECT_EQ(stats[i].decoded_bytes, stats[0].decoded_bytes) << "simulator " << i;
  }
}

TEST(DecodedProgramTest, MutatedProgramNeverAliasesAStaleDecode) {
  isa::Program program(1);
  program.cores[0].code.push_back(isa::Instruction::g_li(4, 7));
  program.cores[0].code.push_back(isa::Instruction::halt());

  const auto first = DecodedProgram::shared(program, isa::Registry::builtin());
  // Same content -> same shared decode while a strong reference is live.
  EXPECT_EQ(DecodedProgram::shared(program, isa::Registry::builtin()).get(), first.get());

  // Content change (same object, same address) -> a different decode.
  program.cores[0].code[0] = isa::Instruction::g_li(4, 8);
  const auto second = DecodedProgram::shared(program, isa::Registry::builtin());
  EXPECT_NE(second.get(), first.get());
  EXPECT_NE(second->fingerprint(), first->fingerprint());
}

TEST(DecodedProgramTest, StrongLruKeepsRecentDecodesWarm) {
  isa::Program program(1);
  program.cores[0].code.push_back(isa::Instruction::g_li(5, 12345));
  program.cores[0].code.push_back(isa::Instruction::halt());
  const isa::Registry& registry = isa::Registry::builtin();

  const std::size_t previous = decoded_cache_set_strong_capacity(2);
  const DecodedCacheStats before = decoded_cache_stats();
  // No caller keeps a strong reference — only the LRU pin holds the decode.
  DecodedProgram::shared(program, registry);
  DecodedProgram::shared(program, registry);
  const DecodedCacheStats warm = decoded_cache_stats();
  EXPECT_EQ(warm.builds - before.builds, 1u) << "second lookup must be warm";
  EXPECT_EQ(warm.hits - before.hits, 1u);
  EXPECT_GE(warm.strong_entries, 1u);
  EXPECT_EQ(warm.strong_capacity, 2u);

  // Capacity 0 restores the pure weak behavior: with no strong reference
  // left the decode expires, and the next lookup rebuilds from cold.
  decoded_cache_set_strong_capacity(0);
  EXPECT_EQ(decoded_cache_stats().strong_entries, 0u);
  DecodedProgram::shared(program, registry);
  const DecodedCacheStats rebuilt = decoded_cache_stats();
  EXPECT_EQ(rebuilt.builds - warm.builds, 1u);

  decoded_cache_set_strong_capacity(previous);
}

// --- 64-byte alignment contract ---------------------------------------------

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kBufferAlignBytes == 0;
}

TEST(AlignedMemoryTest, ZeroedBufferIsAlignedAndZero) {
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{4097}, std::size_t{1} << 20}) {
    ZeroedBuffer buffer;
    buffer.reset_zeroed(n);
    ASSERT_TRUE(aligned64(buffer.data())) << "n=" << n;
    ASSERT_EQ(buffer.size(), n);
    const std::uint8_t* data = buffer.data();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], 0u) << "n=" << n << " i=" << i;
    }
  }
}

TEST(AlignedMemoryTest, AlignedBufferSurvivesGrowOnlyReallocation) {
  AlignedBuffer<std::uint8_t> bytes;
  AlignedBuffer<std::int32_t> words;
  // A growth series crossing several capacity doublings: EVERY reallocation
  // must hand back a 64-byte-aligned block (the SIMD loads rely on it).
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                        std::size_t{65}, std::size_t{1000}, std::size_t{4096},
                        std::size_t{100000}}) {
    std::uint8_t* b = bytes.ensure(n);
    std::int32_t* w = words.ensure(n);
    ASSERT_TRUE(aligned64(b)) << "n=" << n;
    ASSERT_TRUE(aligned64(w)) << "n=" << n;
    ASSERT_GE(bytes.capacity(), n);
    ASSERT_GE(words.capacity(), n);
    b[n - 1] = 0x5A;            // the block really is writable to the end
    w[n - 1] = -1;
  }
  // Grow-only: asking for less must not reallocate (pointer stays put).
  std::uint8_t* grown = bytes.ensure(100000);
  EXPECT_EQ(bytes.ensure(5), grown);
}

// --- per-tier differential: every registered tier vs the scalar table --------

/// Every tier enum value; unavailable ones skip at runtime so the suite is
/// identical on x86 and aarch64 hosts.
class KernelTierTest : public ::testing::TestWithParam<kernels::KernelTier> {
 protected:
  void SetUp() override {
    if (!kernels::tier_available(GetParam())) {
      GTEST_SKIP() << "tier '" << kernels::to_string(GetParam())
                   << "' not available on this host";
    }
  }
  const kernels::KernelTable& table() { return kernels::kernel_table(GetParam()); }
  const kernels::KernelTable& scalar() {
    return kernels::kernel_table(kernels::KernelTier::kScalar);
  }
};

TEST_P(KernelTierTest, MvmMatchesScalarAcrossShapesAndOffsets) {
  std::minstd_rand rng(41);
  const struct { std::int64_t rows, cols; } shapes[] = {
      {1, 1}, {7, 3}, {16, 16}, {33, 17}, {64, 64}, {128, 48},
      {511, 63}, {256, 256}, {0, 8}, {8, 0}};
  // offset shifts every operand off 64-byte alignment — the kernels use
  // unaligned loads and must not care.
  for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    for (const auto& shape : shapes) {
      const std::size_t wn = static_cast<std::size_t>(shape.rows * shape.cols);
      std::vector<std::int8_t> weights(wn + offset);
      for (auto& w : weights) w = static_cast<std::int8_t>(rng() & 0xFF);
      std::vector<std::uint8_t> in(static_cast<std::size_t>(shape.rows) + offset);
      for (auto& v : in) v = static_cast<std::uint8_t>(rng() & 0xFF);
      std::vector<std::int32_t> acc_scalar(static_cast<std::size_t>(shape.cols) + offset);
      for (auto& v : acc_scalar) v = static_cast<std::int32_t>(rng());
      std::vector<std::int32_t> acc_tier = acc_scalar;

      scalar().mvm_accumulate(acc_scalar.data() + offset, in.data() + offset,
                              weights.data() + offset, shape.rows, shape.cols);
      table().mvm_accumulate(acc_tier.data() + offset, in.data() + offset,
                             weights.data() + offset, shape.rows, shape.cols);
      EXPECT_EQ(acc_scalar, acc_tier)
          << "rows=" << shape.rows << " cols=" << shape.cols << " offset=" << offset;
    }
  }
}

TEST_P(KernelTierTest, ElementwiseMatchesScalarAcrossSizes) {
  std::minstd_rand rng(43);
  for (std::int64_t n : {0, 1, 15, 16, 17, 31, 32, 33, 100, 1000}) {
    for (std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      const std::size_t un = static_cast<std::size_t>(n) + offset;
      std::vector<std::uint8_t> a(un), b(un);
      std::vector<std::uint8_t> a32(4 * un), b32(4 * un);
      for (auto& v : a) v = static_cast<std::uint8_t>(rng() & 0xFF);
      for (auto& v : b) v = static_cast<std::uint8_t>(rng() & 0xFF);
      for (auto& v : a32) v = static_cast<std::uint8_t>(rng() & 0xFF);
      for (auto& v : b32) v = static_cast<std::uint8_t>(rng() & 0xFF);

      const auto diff8 = [&](const char* what, auto&& run) {
        std::vector<std::uint8_t> want(un, 0xCD), got(un, 0xCD);
        run(scalar(), want.data() + offset);
        run(table(), got.data() + offset);
        EXPECT_EQ(want, got) << what << " n=" << n << " offset=" << offset;
      };
      const std::uint8_t* pa = a.data() + offset;
      const std::uint8_t* pb = b.data() + offset;
      const std::uint8_t* pa32 = a32.data() + offset;
      const std::uint8_t* pb32 = b32.data() + offset;
      diff8("add8", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.add8(dst, pa, pb, n);
      });
      diff8("sub8", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.sub8(dst, pa, pb, n);
      });
      diff8("max8", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.max8(dst, pa, pb, n);
      });
      diff8("min8", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.min8(dst, pa, pb, n);
      });
      diff8("relu8", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.relu8(dst, pa, n);
      });
      diff8("rowmax8", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        if (n > 0) std::memset(dst, 0x80, static_cast<std::size_t>(n));
        t.rowmax8(dst, pa, n);
        t.rowmax8(dst, pb, n);
      });

      const auto diff32 = [&](const char* what, auto&& run) {
        std::vector<std::uint8_t> want(4 * un, 0xCD), got(4 * un, 0xCD);
        run(scalar(), want.data() + 4 * offset);
        run(table(), got.data() + 4 * offset);
        EXPECT_EQ(want, got) << what << " n=" << n << " offset=" << offset;
      };
      diff32("add32", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.add32(dst, pa32, pb32, n);
      });
      diff32("max32", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.max32(dst, pa32, pb32, n);
      });
      diff32("relu32", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.relu32(dst, pa32, n);
      });
      diff32("deq8to32", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.deq8to32(dst, pa, n);
      });
      diff32("add8to32", [&](const kernels::KernelTable& t, std::uint8_t* dst) {
        t.add8to32(dst, pa32, pb, n);
      });

      std::vector<std::int32_t> acc_want(un, 7), acc_got(un, 7);
      scalar().rowadd8_i32(acc_want.data() + offset, pa, n);
      table().rowadd8_i32(acc_got.data() + offset, pa, n);
      EXPECT_EQ(acc_want, acc_got) << "rowadd8_i32 n=" << n << " offset=" << offset;
    }
  }
}

TEST_P(KernelTierTest, QuantMatchesScalarAcrossShiftsAndZeroPoints) {
  std::minstd_rand rng(47);
  const std::int64_t n = 257;  // odd: exercises every vector tail
  // Arbitrary int32 accumulators are only UB-free for shift >= 1 (the
  // rounded value plus a small zero-point then always fits); shift <= 0
  // paths get small accumulators instead.
  for (int shift : {1, 2, 7, 8, 15, 24, 31}) {
    for (std::int32_t zero : {-1000, -1, 0, 5, 1000}) {
      std::vector<std::uint8_t> src(static_cast<std::size_t>(4 * n));
      for (auto& v : src) v = static_cast<std::uint8_t>(rng() & 0xFF);
      std::vector<std::uint8_t> want(static_cast<std::size_t>(n), 0xCD);
      std::vector<std::uint8_t> got = want;
      scalar().quant(want.data(), src.data(), n, shift, zero);
      table().quant(got.data(), src.data(), n, shift, zero);
      EXPECT_EQ(want, got) << "shift=" << shift << " zero=" << zero;
    }
  }
  for (int shift : {0, -1, -4}) {
    std::vector<std::int32_t> accs(static_cast<std::size_t>(n));
    for (auto& v : accs) {
      v = static_cast<std::int32_t>(rng() % (1 << 20)) - (1 << 19);
    }
    std::vector<std::uint8_t> src(static_cast<std::size_t>(4 * n));
    kernels::store_le32_row(src.data(), accs.data(), n);
    std::vector<std::uint8_t> want(static_cast<std::size_t>(n), 0xCD);
    std::vector<std::uint8_t> got = want;
    scalar().quant(want.data(), src.data(), n, shift, 3);
    table().quant(got.data(), src.data(), n, shift, 3);
    EXPECT_EQ(want, got) << "shift=" << shift;
  }
}

// Randomized soak through the REAL simulator: the same program and image per
// tier, page straddles and accumulate passes included — outputs must agree
// with the scalar tier on every byte.
TEST_P(KernelTierTest, SimulatorOutputMatchesScalarTier) {
  const char* source = R"(
      G_LI R4, 0
      G_LIH R4, -32768     ; staging @ local 0
      G_LI R5, 1024
      G_LI R6, 2048        ; 32 x 64 tile @ global 1024
      MEM_CPY R4, R5, R6
      G_LI R7, 32
      CIM_CFG S0, R7
      G_LI R8, 64
      CIM_CFG S1, R8
      G_LI R9, 1
      CIM_LOAD R4, R9
      G_LI R10, -16
      G_LIH R10, 0         ; input @ 65520 straddles the page boundary
      G_LI R11, -512
      G_LIH R11, 1         ; psum @ 130560
      CIM_MVM R10, R11, R9, 0
      CIM_MVM R10, R11, R9, 1
      G_LI R12, 300
      G_LI R13, 900
      G_LI R14, 4096
      G_LI R15, 500
      VEC_ADD8 R14, R12, R13, R15
      VEC_RELU8 R14, R14, R0, R15
      G_LI R16, 3
      CIM_CFG S2, R16
      CIM_CFG S3, R9
      VEC_QUANT R14, R11, R0, R8
      HALT
  )";
  const std::vector<std::uint8_t> image = random_image(3 * kPage, 53);
  std::vector<std::uint8_t> outputs[2];
  const kernels::KernelTier tiers[2] = {kernels::KernelTier::kScalar, GetParam()};
  for (int t = 0; t < 2; ++t) {
    isa::Program program(4);
    program.cores[0] = isa::assemble(source);
    for (int c = 1; c < 4; ++c) {
      program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
    }
    program.batch = 1;
    program.global_image = image;
    program.output_global_offset = 0;
    program.output_bytes_per_image = static_cast<std::int64_t>(image.size());
    SimOptions options;
    options.functional = true;
    options.kernel_tier = tiers[t];
    Simulator simulator(small_arch(), options);
    simulator.run(program, {std::vector<std::uint8_t>{}});
    outputs[t] = simulator.output(program, 0);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelTierTest,
                         ::testing::Values(kernels::KernelTier::kScalar,
                                           kernels::KernelTier::kAvx2,
                                           kernels::KernelTier::kNeon),
                         [](const ::testing::TestParamInfo<kernels::KernelTier>& info) {
                           return std::string(kernels::to_string(info.param));
                         });

// --- dispatch: strict parsing, env override, availability --------------------

/// Saves and restores CIMFLOW_KERNELS around each test so the override tests
/// never leak into the rest of the suite (or inherit CI's setting).
class KernelDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("CIMFLOW_KERNELS");
    if (env != nullptr) saved_ = env;
    unsetenv("CIMFLOW_KERNELS");
  }
  void TearDown() override {
    if (saved_.has_value()) {
      setenv("CIMFLOW_KERNELS", saved_->c_str(), 1);
    } else {
      unsetenv("CIMFLOW_KERNELS");
    }
  }
  std::optional<std::string> saved_;
};

TEST_F(KernelDispatchTest, TierStringsRoundTripAndRejectUnknown) {
  using kernels::KernelTier;
  for (KernelTier tier : {KernelTier::kAuto, KernelTier::kScalar, KernelTier::kAvx2,
                          KernelTier::kNeon}) {
    EXPECT_EQ(kernels::tier_from_string(kernels::to_string(tier)), tier);
  }
  try {
    kernels::tier_from_string("avx512");
    FAIL() << "unknown tier must raise";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("avx512"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("expected auto, scalar, avx2, or neon"),
              std::string::npos);
  }
}

TEST_F(KernelDispatchTest, ResolveHonorsRequestAndProbe) {
  using kernels::KernelTier;
  // Scalar is always available and always resolves to itself.
  EXPECT_EQ(kernels::resolve_tier(KernelTier::kScalar), KernelTier::kScalar);
  // Auto resolves to something concrete and available.
  const KernelTier resolved = kernels::resolve_tier(KernelTier::kAuto);
  EXPECT_NE(resolved, KernelTier::kAuto);
  EXPECT_TRUE(kernels::tier_available(resolved));
  // Every available tier has a table; the scalar list is never empty.
  const std::vector<KernelTier> tiers = kernels::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), KernelTier::kScalar);
  for (KernelTier tier : tiers) {
    EXPECT_NE(kernels::kernel_table(tier).mvm_accumulate, nullptr);
  }
  // Requesting an absent tier raises instead of silently falling back.
  for (KernelTier tier : {KernelTier::kAvx2, KernelTier::kNeon}) {
    if (kernels::tier_available(tier)) continue;
    EXPECT_THROW(kernels::resolve_tier(tier), Error);
  }
}

TEST_F(KernelDispatchTest, EnvOverrideIsStrict) {
  using kernels::KernelTier;
  setenv("CIMFLOW_KERNELS", "scalar", 1);
  EXPECT_EQ(kernels::resolve_tier(KernelTier::kAuto), KernelTier::kScalar);
  // An explicit (non-auto) request wins over the env override.
  EXPECT_EQ(kernels::resolve_tier(KernelTier::kScalar), KernelTier::kScalar);

  setenv("CIMFLOW_KERNELS", "auto", 1);
  EXPECT_TRUE(kernels::tier_available(kernels::resolve_tier(KernelTier::kAuto)));

  setenv("CIMFLOW_KERNELS", "fast", 1);
  try {
    kernels::resolve_tier(KernelTier::kAuto);
    FAIL() << "garbage CIMFLOW_KERNELS must raise";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CIMFLOW_KERNELS"), std::string::npos);
  }

  // Naming a tier this host lacks is an error too — a mistyped gate must not
  // silently run some other tier.
  for (KernelTier tier : {KernelTier::kAvx2, KernelTier::kNeon}) {
    if (kernels::tier_available(tier)) continue;
    setenv("CIMFLOW_KERNELS", kernels::to_string(tier), 1);
    EXPECT_THROW(kernels::resolve_tier(KernelTier::kAuto), Error);
  }
}

// --- cross-tier byte identity of reported metrics ----------------------------

// The tentpole invariant: SIMD only changes wall clock. The full evaluation
// JSON (cycles, energy, validation — everything the CLI's --json writes) must
// be byte-identical across every tier this host can run.
TEST(KernelTierIdentityTest, EvaluationJsonIdenticalAcrossTiers) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  std::string scalar_json;
  for (kernels::KernelTier tier : kernels::available_tiers()) {
    Flow flow(arch);
    FlowOptions options;
    options.strategy = compiler::Strategy::kDpOptimized;
    options.batch = 2;
    options.validate = true;  // functional run + golden comparison per tier
    options.eval.kernel_tier = tier;
    const EvaluationReport report = flow.evaluate(model, options);
    EXPECT_TRUE(report.validation_passed)
        << "tier " << kernels::to_string(tier) << " diverged from the golden executor";
    const std::string json = report.to_json().dump();
    if (tier == kernels::KernelTier::kScalar) {
      scalar_json = json;
    } else {
      EXPECT_EQ(json, scalar_json)
          << "tier " << kernels::to_string(tier) << " changed the reported metrics";
    }
  }
}

// SIMD under the parallel scheduler: 8 worker threads on the auto tier vs the
// serial scalar baseline must agree byte-for-byte. (Also the TSan target: CI
// runs this with the race detector on.)
TEST(KernelTierParallelTest, ParallelSimdMatchesSerialScalar) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  std::string baseline;
  const struct { kernels::KernelTier tier; std::int64_t threads; } runs[] = {
      {kernels::KernelTier::kScalar, 1}, {kernels::KernelTier::kAuto, 8}};
  for (const auto& run : runs) {
    Flow flow(arch);
    FlowOptions options;
    options.strategy = compiler::Strategy::kDpOptimized;
    options.batch = 4;
    options.functional = true;
    options.eval.kernel_tier = run.tier;
    options.eval.sim_threads = run.threads;
    const std::string json = flow.evaluate(model, options).to_json().dump();
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "parallel SIMD run diverged from serial scalar";
    }
  }
}

}  // namespace
}  // namespace cimflow::sim
