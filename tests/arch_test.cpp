// Unit tests for the architecture model: Table I defaults, derived
// geometry, config validation, JSON round trip, mesh/hop math and the
// energy model.
#include <gtest/gtest.h>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/arch/energy_model.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::arch {
namespace {

TEST(ArchConfigTest, Table1Defaults) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  EXPECT_EQ(arch.chip().core_count, 64);
  EXPECT_EQ(arch.chip().noc_flit_bytes, 8);
  EXPECT_EQ(arch.chip().global_mem_bytes, 16ll << 20);
  EXPECT_EQ(arch.core().mg_per_unit, 16);
  EXPECT_EQ(arch.core().local_mem_bytes, 512 * 1024);
  EXPECT_EQ(arch.unit().macros_per_group, 8);
  EXPECT_EQ(arch.unit().macro_rows, 512);
  EXPECT_EQ(arch.unit().macro_cols, 64);
  EXPECT_EQ(arch.unit().element_rows, 32);
  EXPECT_EQ(arch.unit().element_cols, 8);
}

TEST(ArchConfigTest, DerivedGeometry) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  EXPECT_EQ(arch.weights_per_macro_row(), 8);          // 64 cols / 8-bit weights
  EXPECT_EQ(arch.mg_rows(), 512);
  EXPECT_EQ(arch.mg_cols(), 64);                       // 8 macros x 8 weights
  EXPECT_EQ(arch.macro_weight_bytes(), 512 * 8);
  EXPECT_EQ(arch.mg_weight_bytes(), 512 * 64);         // 32 KB
  EXPECT_EQ(arch.core_weight_bytes(), 512 * 1024);     // 16 MGs = 512 KB
  EXPECT_EQ(arch.chip_weight_bytes(), 32ll << 20);     // 64 cores = 32 MB
  EXPECT_EQ(arch.mvm_interval_cycles(), 8);            // INT8 bit-serial
  EXPECT_EQ(arch.mvm_latency_cycles(), 12);
  EXPECT_GT(arch.peak_tops(), 0);
}

TEST(ArchConfigTest, AreaEstimateGrowsWithMacroCount) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  EXPECT_GT(arch.area_mm2(), 0);

  // Doubling macros_per_group doubles the chip's CIM array; memories are
  // unchanged, so area grows but less than 2x.
  UnitParams wide = arch.unit();
  wide.macros_per_group *= 2;
  const ArchConfig wider(arch.chip(), arch.core(), wide, arch.energy());
  EXPECT_GT(wider.area_mm2(), arch.area_mm2());
  EXPECT_LT(wider.area_mm2(), 2 * arch.area_mm2());

  // Pure function of the configuration — identical configs, identical area.
  EXPECT_EQ(arch.area_mm2(), ArchConfig::cimflow_default().area_mm2());
}

TEST(ArchConfigTest, MeshAndHops) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  EXPECT_EQ(arch.mesh_rows(), 8);
  EXPECT_EQ(arch.core_x(9), 1);
  EXPECT_EQ(arch.core_y(9), 1);
  EXPECT_EQ(arch.hops_between(0, 0), 0);
  EXPECT_EQ(arch.hops_between(0, 9), 2);
  EXPECT_EQ(arch.hops_between(0, 63), 14);
  EXPECT_EQ(arch.hops_between(9, 0), arch.hops_between(0, 9));  // symmetric
  EXPECT_EQ(arch.hops_to_global(0), 1);
}

struct BadConfigCase {
  const char* name;
  std::function<void(ChipParams&, CoreParams&, UnitParams&)> mutate;
};

class ArchValidationTest : public ::testing::TestWithParam<BadConfigCase> {};

TEST_P(ArchValidationTest, RejectsInvalid) {
  ChipParams chip;
  CoreParams core;
  UnitParams unit;
  GetParam().mutate(chip, core, unit);
  EXPECT_THROW(ArchConfig(chip, core, unit, EnergyParams{}), Error);
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, ArchValidationTest,
    ::testing::Values(
        BadConfigCase{"zero_cores", [](auto& c, auto&, auto&) { c.core_count = 0; }},
        BadConfigCase{"ragged_mesh", [](auto& c, auto&, auto&) { c.core_count = 63; }},
        BadConfigCase{"zero_flit", [](auto& c, auto&, auto&) { c.noc_flit_bytes = 0; }},
        BadConfigCase{"too_many_banks", [](auto& c, auto&, auto&) { c.global_mem_banks = 99; }},
        BadConfigCase{"tiny_local", [](auto&, auto& k, auto&) { k.local_mem_bytes = 100; }},
        BadConfigCase{"too_many_gregs", [](auto&, auto& k, auto&) { k.num_gregs = 64; }},
        BadConfigCase{"macro_row_mismatch",
                      [](auto&, auto&, auto& u) { u.element_rows = 31; }},
        BadConfigCase{"weight_bits_mismatch",
                      [](auto&, auto&, auto& u) { u.weight_bits = 7; }},
        BadConfigCase{"zero_macros", [](auto&, auto&, auto& u) { u.macros_per_group = 0; }}),
    [](const auto& info) { return info.param.name; });

TEST(ArchConfigTest, JsonRoundTrip) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  const ArchConfig back = ArchConfig::from_json(arch.to_json());
  EXPECT_EQ(back.chip().core_count, arch.chip().core_count);
  EXPECT_EQ(back.core().local_mem_bytes, arch.core().local_mem_bytes);
  EXPECT_EQ(back.unit().macros_per_group, arch.unit().macros_per_group);
  EXPECT_DOUBLE_EQ(back.energy().macro_mac_pj, arch.energy().macro_mac_pj);
}

TEST(ArchConfigTest, JsonPartialOverride) {
  const Json doc = Json::parse(R"({"unit": {"macros_per_group": 16},
                                   "chip": {"noc_flit_bytes": 16}})");
  const ArchConfig arch = ArchConfig::from_json(doc);
  EXPECT_EQ(arch.unit().macros_per_group, 16);
  EXPECT_EQ(arch.chip().noc_flit_bytes, 16);
  EXPECT_EQ(arch.chip().core_count, 64);  // untouched default
  EXPECT_EQ(arch.mg_cols(), 128);         // derived from the override
}

TEST(ArchConfigTest, SummaryMentionsKeyNumbers) {
  const std::string text = ArchConfig::cimflow_default().summary();
  EXPECT_NE(text.find("64 cores"), std::string::npos);
  EXPECT_NE(text.find("512 KB"), std::string::npos);
}

// --- energy model -------------------------------------------------------------------

TEST(EnergyModelTest, MvmScalesWithActivity) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  const EnergyModel model(arch);
  const double full = model.mvm_pj(512, 64);
  const double half_rows = model.mvm_pj(256, 64);
  const double half_cols = model.mvm_pj(512, 32);
  EXPECT_GT(full, half_rows);
  EXPECT_GT(full, half_cols);
  // Depthwise block-diagonal tiles price only their active MACs.
  EXPECT_LT(model.mvm_pj_macs(9 * 56, 56), model.mvm_pj(504, 56));
}

TEST(EnergyModelTest, TransfersScaleLinearly) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  const EnergyModel model(arch);
  EXPECT_DOUBLE_EQ(model.local_mem_pj(200), 2 * model.local_mem_pj(100));
  EXPECT_DOUBLE_EQ(model.global_mem_pj(200), 2 * model.global_mem_pj(100));
  EXPECT_GT(model.noc_pj(64, 4), model.noc_pj(64, 1));
  // Flit quantization: 1 byte still costs a full flit.
  EXPECT_DOUBLE_EQ(model.noc_pj(1, 1), model.noc_pj(8, 1));
}

TEST(EnergyModelTest, LeakageScalesWithTime) {
  const ArchConfig arch = ArchConfig::cimflow_default();
  const EnergyModel model(arch);
  EXPECT_DOUBLE_EQ(model.leakage_pj(64, 2000), 2 * model.leakage_pj(64, 1000));
  EXPECT_GT(model.global_leakage_pj(1000), 0);
}

}  // namespace
}  // namespace cimflow::arch
