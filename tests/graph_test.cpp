// Unit + property tests for the computation-graph layer: shape inference,
// validation, statistics, condensation rules, alias resolution, and
// dependency-closure enumeration checked against brute force.
#include <gtest/gtest.h>

#include <set>

#include "cimflow/graph/closures.hpp"
#include "cimflow/graph/condense.hpp"
#include "cimflow/graph/graph.hpp"
#include "cimflow/support/rng.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::graph {
namespace {

// --- shape inference -----------------------------------------------------------

TEST(GraphTest, ConvShapes) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 32, 32, 3});
  const NodeId c1 = g.add_conv2d(in, ConvAttrs{16, 3, 1, 1});
  EXPECT_EQ(g.node(c1).out_shape, (Shape{1, 32, 32, 16}));
  const NodeId c2 = g.add_conv2d(c1, ConvAttrs{32, 3, 2, 1});
  EXPECT_EQ(g.node(c2).out_shape, (Shape{1, 16, 16, 32}));
  const NodeId c3 = g.add_conv2d(c2, ConvAttrs{8, 1, 1, 0});
  EXPECT_EQ(g.node(c3).out_shape, (Shape{1, 16, 16, 8}));
  const NodeId c4 = g.add_conv2d(in, ConvAttrs{64, 7, 2, 3});
  EXPECT_EQ(g.node(c4).out_shape, (Shape{1, 16, 16, 64}));
}

TEST(GraphTest, PoolAndGapShapes) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 112, 112, 64});
  const NodeId mp = g.add_max_pool(in, PoolAttrs{3, 2, 1});
  EXPECT_EQ(g.node(mp).out_shape, (Shape{1, 56, 56, 64}));
  const NodeId ap = g.add_avg_pool(mp, PoolAttrs{2, 2, 0});
  EXPECT_EQ(g.node(ap).out_shape, (Shape{1, 28, 28, 64}));
  const NodeId gap = g.add_global_avg_pool(ap);
  EXPECT_EQ(g.node(gap).out_shape, (Shape{1, 1, 1, 64}));
}

TEST(GraphTest, FcFlattensInput) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 7, 7, 512});
  const NodeId fc = g.add_fully_connected(in, 1000);
  EXPECT_EQ(g.node(fc).out_shape, (Shape{1, 1, 1, 1000}));
  EXPECT_EQ(g.node(fc).weights->size(), 1000u * 7 * 7 * 512);
}

TEST(GraphTest, DepthwiseKeepsChannels) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 14, 14, 96});
  const NodeId dw = g.add_depthwise_conv2d(in, 3, 1, 1);
  EXPECT_EQ(g.node(dw).out_shape, (Shape{1, 14, 14, 96}));
  EXPECT_EQ(g.node(dw).weights->size(), 96u * 9);
}

TEST(GraphTest, AddRequiresMatchingShapes) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 8, 8, 16});
  const NodeId c1 = g.add_conv2d(in, ConvAttrs{16, 3, 1, 1});
  EXPECT_NO_THROW(g.add_add(c1, in));
  const NodeId c2 = g.add_conv2d(in, ConvAttrs{8, 3, 1, 1});
  EXPECT_THROW(g.add_add(c2, in), Error);
}

TEST(GraphTest, ScaleChannelsChecksVector) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 8, 8, 16});
  const NodeId vec = g.add_input(Shape{1, 1, 1, 16}, "gate");
  EXPECT_NO_THROW(g.add_scale_channels(in, vec));
  const NodeId bad = g.add_input(Shape{1, 1, 1, 8}, "bad");
  EXPECT_THROW(g.add_scale_channels(in, bad), Error);
}

TEST(GraphTest, RejectsDegenerateConvs) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 4, 4, 3});
  EXPECT_THROW(g.add_conv2d(in, ConvAttrs{0, 3, 1, 1}), Error);
  EXPECT_THROW(g.add_conv2d(in, ConvAttrs{8, 7, 1, 0}), Error);  // collapses
  EXPECT_THROW(g.add_conv2d(in, ConvAttrs{8, 3, 0, 1}), Error);  // stride 0
}

TEST(GraphTest, FlattenAndAlias) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 2, 2, 8});
  const NodeId conv = g.add_conv2d(in, ConvAttrs{8, 1, 1, 0});
  const NodeId flat = g.add_flatten(conv);
  EXPECT_EQ(g.node(flat).out_shape, (Shape{1, 1, 1, 32}));
  EXPECT_EQ(g.resolve_alias(flat), conv);
  EXPECT_EQ(g.resolve_alias(conv), conv);
}

// --- statistics -------------------------------------------------------------------

TEST(GraphTest, MacCounts) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 8, 8, 4});
  const NodeId conv = g.add_conv2d(in, ConvAttrs{16, 3, 1, 1});
  // 8*8 positions x 16 outputs x 3*3*4 taps
  EXPECT_EQ(g.node(conv).macs(), 64 * 16 * 36);
  const NodeId dw = g.add_depthwise_conv2d(conv, 3, 1, 1);
  EXPECT_EQ(g.node(dw).macs(), 64 * 16 * 9);
  const NodeId fc = g.add_fully_connected(dw, 10);
  EXPECT_EQ(g.node(fc).macs(), 64 * 16 * 10);
  EXPECT_EQ(g.total_macs(),
            g.node(conv).macs() + g.node(dw).macs() + g.node(fc).macs());
}

TEST(GraphTest, QuantShiftGrowsWithFanIn) {
  EXPECT_LT(QuantSpec::for_fan_in(9).shift, QuantSpec::for_fan_in(4608).shift);
  EXPECT_GE(QuantSpec::for_fan_in(1).shift, 0);
}

TEST(GraphTest, RandomizeIsDeterministic) {
  Graph a, b;
  for (Graph* g : {&a, &b}) {
    const NodeId in = g->add_input(Shape{1, 4, 4, 4});
    g->add_conv2d(in, ConvAttrs{8, 3, 1, 1});
    g->set_output(1);
    g->randomize_parameters(99);
  }
  EXPECT_EQ(*a.node(1).weights, *b.node(1).weights);
  EXPECT_EQ(*a.node(1).bias, *b.node(1).bias);
}

TEST(GraphTest, VerifyCatchesMissingOutput) {
  Graph g;
  g.add_input(Shape{1, 4, 4, 4});
  EXPECT_THROW(g.verify(), Error);
}

// --- condensation ----------------------------------------------------------------

TEST(CondenseTest, FusesAuxIntoMvmGroups) {
  Graph g;
  NodeId x = g.add_input(Shape{1, 8, 8, 8});
  x = g.add_conv2d(x, ConvAttrs{8, 3, 1, 1}, "conv1");
  x = g.add_relu(x);
  x = g.add_conv2d(x, ConvAttrs{8, 1, 1, 0}, "conv2");
  g.set_output(x);
  g.randomize_parameters(1);
  const CondensedGraph cg = CondensedGraph::build(g);
  // input group + conv1(+relu) + conv2
  EXPECT_EQ(cg.size(), 3);
  EXPECT_EQ(cg.group(1).nodes.size(), 2u);  // conv1 + relu
  EXPECT_EQ(cg.group_of(2), cg.group_of(1));
  EXPECT_EQ(cg.compute_order(), (std::vector<GroupId>{1, 2}));
}

TEST(CondenseTest, PoolingGetsOwnGroup) {
  Graph g;
  NodeId x = g.add_input(Shape{1, 8, 8, 8});
  x = g.add_conv2d(x, ConvAttrs{8, 3, 1, 1}, "conv");
  x = g.add_relu(x);
  x = g.add_max_pool(x, PoolAttrs{2, 2, 0}, "pool");
  x = g.add_global_avg_pool(x, "gap");
  g.set_output(x);
  g.randomize_parameters(2);
  const CondensedGraph cg = CondensedGraph::build(g);
  EXPECT_EQ(cg.size(), 4);  // input, conv+relu, pool, gap
  EXPECT_EQ(cg.group(cg.group_of(3)).nodes.size(), 1u);
  EXPECT_EQ(cg.group(cg.group_of(4)).nodes.size(), 1u);
}

TEST(CondenseTest, ResidualAddJoinsMainBranch) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 8, 8, 8});
  NodeId main = g.add_conv2d(in, ConvAttrs{8, 3, 1, 1}, "conv1");
  main = g.add_conv2d(main, ConvAttrs{8, 3, 1, 1}, "conv2");
  const NodeId sum = g.add_add(main, in, "add");
  g.set_output(sum);
  g.randomize_parameters(3);
  const CondensedGraph cg = CondensedGraph::build(g);
  EXPECT_EQ(cg.group_of(sum), cg.group_of(main));
  // The add group has two predecessors: conv1's group and the input group.
  const Group& grp = cg.group(cg.group_of(sum));
  EXPECT_EQ(grp.preds.size(), 2u);
}

TEST(CondenseTest, GroupStatsAccumulate) {
  Graph g;
  NodeId x = g.add_input(Shape{1, 8, 8, 8});
  x = g.add_conv2d(x, ConvAttrs{16, 3, 1, 1}, "conv");
  x = g.add_relu(x);
  g.set_output(x);
  g.randomize_parameters(4);
  const CondensedGraph cg = CondensedGraph::build(g);
  const Group& grp = cg.group(1);
  EXPECT_EQ(grp.weight_bytes, 16 * 9 * 8);
  EXPECT_EQ(grp.macs, g.node(1).macs());
  EXPECT_EQ(grp.in_bytes, 8 * 8 * 8);
  EXPECT_EQ(grp.out_bytes, 8 * 8 * 16);
}

// --- closure enumeration vs brute force ------------------------------------------

/// Brute force: all subsets of [0,n) that are downsets of `preds`.
std::set<std::uint32_t> brute_force_downsets(
    const std::vector<std::vector<std::int32_t>>& preds) {
  const std::size_t n = preds.size();
  std::set<std::uint32_t> out;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool closed = true;
    for (std::size_t v = 0; v < n && closed; ++v) {
      if (!(mask & (1u << v))) continue;
      for (std::int32_t p : preds[v]) {
        if (!(mask & (1u << p))) closed = false;
      }
    }
    if (closed) out.insert(mask);
  }
  return out;
}

std::uint32_t to_mask(const DynBitset& bits) {
  std::uint32_t mask = 0;
  bits.for_each([&](std::size_t i) { mask |= 1u << i; });
  return mask;
}

TEST(ClosureTest, MatchesBruteForceOnRandomDags) {
  SplitMix64 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 3 + rng.next_below(10);  // up to 12 nodes
    std::vector<std::vector<std::int32_t>> preds(n);
    for (std::size_t v = 1; v < n; ++v) {
      for (std::size_t u = 0; u < v; ++u) {
        if (rng.next_below(100) < 25) preds[v].push_back(static_cast<std::int32_t>(u));
      }
    }
    const auto expected = brute_force_downsets(preds);
    const std::vector<DynBitset> actual = enumerate_closures(preds);
    ASSERT_EQ(actual.size(), expected.size()) << "trial " << trial;
    std::set<std::uint32_t> seen;
    for (const DynBitset& bits : actual) seen.insert(to_mask(bits));
    EXPECT_EQ(seen, expected) << "trial " << trial;
    // Sorted by popcount: every prefix is a valid DP ordering.
    for (std::size_t i = 1; i < actual.size(); ++i) {
      EXPECT_LE(actual[i - 1].count(), actual[i].count());
    }
  }
}

TEST(ClosureTest, ChainYieldsPrefixes) {
  std::vector<std::vector<std::int32_t>> preds(5);
  for (int v = 1; v < 5; ++v) preds[v].push_back(v - 1);
  const auto closures = enumerate_closures(preds);
  EXPECT_EQ(closures.size(), 6u);  // prefixes incl. empty
}

TEST(ClosureTest, TruncationFallsBackToPrefixes) {
  // A wide antichain has 2^n downsets; with a tiny limit we fall back.
  std::vector<std::vector<std::int32_t>> preds(16);  // no edges
  bool truncated = false;
  const auto closures = enumerate_closures(preds, /*limit=*/100, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(closures.size(), 17u);  // n+1 prefixes
}

}  // namespace
}  // namespace cimflow::graph
