// Tests for the integrated-flow facade and design-space-exploration helpers,
// plus cross-architecture bit-exactness: the compiler + simulator must stay
// functionally correct on every hardware configuration the paper sweeps.
#include <gtest/gtest.h>

#include "cimflow/core/dse.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"

namespace cimflow {
namespace {

TEST(FlowTest, EvaluateFillsReport) {
  Flow flow(arch::ArchConfig::cimflow_default());
  FlowOptions options;
  options.batch = 2;
  options.validate = true;
  const EvaluationReport report = flow.evaluate(models::micro_cnn({}), options);
  EXPECT_EQ(report.model, "micro_cnn");
  EXPECT_EQ(report.strategy, "dp");
  EXPECT_TRUE(report.validated);
  EXPECT_TRUE(report.validation_passed);
  EXPECT_GT(report.sim.cycles, 0);
  EXPECT_GT(report.sim.energy_mj(), 0);
  EXPECT_EQ(report.sim.images, 2);
  EXPECT_FALSE(report.mapping_summary.empty());
  EXPECT_NE(report.summary().find("PASSED"), std::string::npos);
}

TEST(FlowTest, TimingModeSkipsValidation) {
  Flow flow(arch::ArchConfig::cimflow_default());
  const EvaluationReport report = flow.evaluate(models::micro_cnn({}), {});
  EXPECT_FALSE(report.validated);
  EXPECT_GT(report.sim.cycles, 0);
}

TEST(DseTest, ArchWithOverridesParameters) {
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  const arch::ArchConfig varied = arch_with(base, 16, 16);
  EXPECT_EQ(varied.unit().macros_per_group, 16);
  EXPECT_EQ(varied.chip().noc_flit_bytes, 16);
  EXPECT_EQ(varied.mg_cols(), 128);
  EXPECT_EQ(varied.chip().core_count, base.chip().core_count);
}

TEST(DseTest, SweepProducesGridPoints) {
  DseSweepOptions options;
  options.mg_sizes = {8, 16};
  options.flit_sizes = {8};
  options.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  options.batch = 2;
  std::size_t progress_calls = 0;
  options.progress = [&](std::size_t, std::size_t) { ++progress_calls; };
  const auto points = run_dse_sweep(models::micro_cnn({}),
                                    arch::ArchConfig::cimflow_default(), options);
  EXPECT_EQ(points.size(), 4u);
  EXPECT_EQ(progress_calls, 4u);
  for (const DsePoint& p : points) {
    EXPECT_GT(p.tops(), 0);
    EXPECT_GT(p.energy_mj(), 0);
  }
}

TEST(DseTest, ParetoFrontIsNonDominated) {
  std::vector<DsePoint> points(3);
  auto fake = [](DsePoint& p, std::int64_t cycles, double /*unused*/) {
    p.report.sim.cycles = cycles;
    p.report.sim.images = 1;
    p.report.sim.macs = 1000000;
  };
  fake(points[0], 1000, 0);
  points[0].report.sim.energy.cim = 5e6;
  fake(points[1], 2000, 0);
  points[1].report.sim.energy.cim = 9e6;  // slower AND more energy: dominated
  fake(points[2], 4000, 0);
  points[2].report.sim.energy.cim = 1e6;  // slow but frugal: on the front
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2}));
}

TEST(FlowTest, TensorBytesReinterpretsInt8) {
  graph::TensorI8 t(graph::Shape{1, 1, 1, 3});
  t.data()[0] = -1;
  t.data()[1] = 0;
  t.data()[2] = 127;
  const auto bytes = tensor_bytes(t);
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0xFF, 0x00, 0x7F}));
}

// --- cross-architecture functional correctness (property sweep) ----------------

struct ArchPoint {
  std::int64_t mg;
  std::int64_t flit;
};

class CrossArchValidation : public ::testing::TestWithParam<ArchPoint> {};

TEST_P(CrossArchValidation, MicroCnnBitExact) {
  const auto [mg, flit] = GetParam();
  Flow flow(arch_with(arch::ArchConfig::cimflow_default(), mg, flit));
  FlowOptions options;
  options.batch = 2;
  options.validate = true;
  const EvaluationReport report = flow.evaluate(models::micro_cnn({}), options);
  EXPECT_TRUE(report.validation_passed)
      << "mg=" << mg << " flit=" << flit << ": " << report.mismatched_bytes
      << " mismatched bytes";
}

INSTANTIATE_TEST_SUITE_P(MgFlitGrid, CrossArchValidation,
                         ::testing::Values(ArchPoint{4, 8}, ArchPoint{8, 16},
                                           ArchPoint{12, 8}, ArchPoint{16, 16}),
                         [](const auto& info) {
                           return "mg" + std::to_string(info.param.mg) + "_flit" +
                                  std::to_string(info.param.flit);
                         });

TEST(CrossArchValidation, ResNetBlocksOnWiderMg) {
  // A deeper model on a non-default geometry, still bit-exact.
  models::ModelOptions mopt;
  mopt.input_hw = 32;
  Flow flow(arch_with(arch::ArchConfig::cimflow_default(), 16, 16));
  FlowOptions options;
  options.validate = true;
  const EvaluationReport report = flow.evaluate(models::resnet18(mopt), options);
  EXPECT_TRUE(report.validation_passed) << report.mismatched_bytes;
}

TEST(CrossArchValidation, AblationWithoutAnnotationStaysCorrect) {
  Flow flow(arch::ArchConfig::cimflow_default());
  FlowOptions options;
  options.batch = 2;
  options.validate = true;
  options.hoist_memory = false;  // innermost-level fetches
  const EvaluationReport report = flow.evaluate(models::micro_cnn({}), options);
  EXPECT_TRUE(report.validation_passed) << report.mismatched_bytes;
}

}  // namespace
}  // namespace cimflow
