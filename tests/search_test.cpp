// Tests for the adaptive DSE search subsystem: ParetoArchive dominance edge
// cases (exact ties, NaN exclusion, deterministic ordering), the pluggable
// strategies, and the SearchDriver's budget/determinism/front guarantees —
// including the acceptance gate that ParetoRefineStrategy recovers the dense
// grid's front from at most half the evaluations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cimflow/models/models.hpp"
#include "cimflow/search/driver.hpp"
#include "cimflow/support/status.hpp"

namespace cimflow::search {
namespace {

// --- ParetoArchive -----------------------------------------------------------

TEST(ParetoArchiveTest, DominanceIsStrictSomewhereWeakEverywhere) {
  EXPECT_TRUE(dominates({1, 2}, {2, 3}));
  EXPECT_TRUE(dominates({1, 3}, {2, 3}));   // tie on one axis, better on the other
  EXPECT_FALSE(dominates({1, 4}, {2, 3}));  // trade-off: neither dominates
  EXPECT_FALSE(dominates({2, 3}, {1, 4}));
  EXPECT_FALSE(dominates({2, 3}, {2, 3}));  // exact tie is not domination
}

TEST(ParetoArchiveTest, InsertKeepsOnlyNonDominated) {
  ParetoArchive archive(2);
  EXPECT_TRUE(archive.insert(0, {4, 4}));
  EXPECT_TRUE(archive.insert(1, {2, 6}));   // trade-off: both stay
  EXPECT_EQ(archive.size(), 2u);
  EXPECT_TRUE(archive.insert(2, {1, 1}));   // dominates both: evicts them
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_TRUE(archive.contains(2));
  EXPECT_FALSE(archive.insert(3, {1, 2}));  // dominated by {1,1}
  EXPECT_EQ(archive.ids(), (std::vector<std::size_t>{2}));
}

TEST(ParetoArchiveTest, ExactTiesCollapseToSmallestId) {
  ParetoArchive a(2);
  EXPECT_TRUE(a.insert(5, {1, 2}));
  EXPECT_FALSE(a.insert(9, {1, 2}));  // same objectives, larger id: rejected
  EXPECT_TRUE(a.insert(3, {1, 2}));   // smaller id takes over the vector
  EXPECT_EQ(a.ids(), (std::vector<std::size_t>{3}));

  // Reversed insertion order converges to the same front — determinism.
  ParetoArchive b(2);
  EXPECT_TRUE(b.insert(3, {1, 2}));
  EXPECT_FALSE(b.insert(9, {1, 2}));
  EXPECT_FALSE(b.insert(5, {1, 2}));
  EXPECT_EQ(b.ids(), a.ids());
}

TEST(ParetoArchiveTest, NonFinitePointsNeverEnterTheFront) {
  ParetoArchive archive(2);
  EXPECT_FALSE(archive.insert(0, {std::nan(""), 1}));
  EXPECT_FALSE(archive.insert(1, {1, std::numeric_limits<double>::infinity()}));
  EXPECT_TRUE(archive.empty());
  EXPECT_TRUE(archive.insert(2, {1, 1}));
  EXPECT_FALSE(archive.covers({std::nan(""), 0}));  // NaN is never covered
}

TEST(ParetoArchiveTest, EntriesStaySortedByIdRegardlessOfInsertionOrder) {
  const std::vector<std::vector<double>> objectives = {{5, 1}, {4, 2}, {3, 3}, {2, 4}, {1, 5}};
  ParetoArchive forward(2);
  for (std::size_t i = 0; i < objectives.size(); ++i) forward.insert(i, objectives[i]);
  ParetoArchive backward(2);
  for (std::size_t i = objectives.size(); i > 0; --i) backward.insert(i - 1, objectives[i - 1]);
  EXPECT_EQ(forward.ids(), backward.ids());
  EXPECT_EQ(forward.ids(), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParetoArchiveTest, CoversFrontChecksDominationOrExactTie) {
  ParetoArchive dense(2);
  dense.insert(0, {3, 1});
  dense.insert(1, {1, 3});
  ParetoArchive adaptive(2);
  adaptive.insert(0, {3, 1});  // exact tie
  adaptive.insert(7, {1, 2});  // dominates {1,3}
  EXPECT_TRUE(adaptive.covers_front(dense));
  EXPECT_FALSE(dense.covers_front(adaptive));  // {1,2} is not covered by dense
  EXPECT_TRUE(adaptive.covers_front(ParetoArchive(2)));  // empty front: trivial
}

TEST(ParetoArchiveTest, DimensionMismatchThrows) {
  ParetoArchive archive(2);
  EXPECT_THROW(archive.insert(0, {1, 2, 3}), Error);
  EXPECT_THROW(archive.covers({1, 2, 3}), Error);
  // Including between archives — an empty 3-objective front must not count
  // as trivially covered by a 2-objective one.
  EXPECT_THROW(archive.covers_front(ParetoArchive(3)), Error);
  EXPECT_THROW(ParetoArchive(0), Error);
}

// --- SearchSpace -------------------------------------------------------------

SearchSpace micro_space() {
  SearchSpace space;
  space.mg_sizes = {4, 8};
  space.flit_sizes = {8, 16};
  space.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  return space;
}

TEST(SearchSpaceTest, IndexCoordsRoundTripMatchesDseJobConvention) {
  const SearchSpace space = micro_space();
  ASSERT_EQ(space.size(), 8u);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.index_of(space.coords(i)), i);
  }
  // Same row-major decode as DseJob: strategy fastest, then flit, then mg.
  const DseJobPoint p = space.sample(5);  // mg_i=1, flit_i=0, strategy_i=1
  EXPECT_EQ(p.macros_per_group, 8);
  EXPECT_EQ(p.flit_bytes, 8);
  EXPECT_EQ(p.strategy, compiler::Strategy::kDpOptimized);
  EXPECT_EQ(p.seed_index, 5u);
  EXPECT_THROW(space.coords(8), Error);
}

// --- Strategies --------------------------------------------------------------

TEST(SearchStrategyTest, GridProposesEveryIndexInOrder) {
  GridStrategy grid;
  grid.reset(micro_space(), 7);
  EXPECT_EQ(grid.propose(3), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(grid.propose(100), (std::vector<std::size_t>{3, 4, 5, 6, 7}));
  EXPECT_TRUE(grid.propose(100).empty());
}

TEST(SearchStrategyTest, RandomIsASeededPermutation) {
  RandomStrategy random;
  random.reset(micro_space(), 7);
  std::vector<std::size_t> order = random.propose(100);
  ASSERT_EQ(order.size(), 8u);
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));

  RandomStrategy again;
  again.reset(micro_space(), 7);
  EXPECT_EQ(again.propose(100), order);  // same seed, same order
}

TEST(SearchStrategyTest, BisectionOrderVisitsEndpointsThenMidpoints) {
  using Order = std::vector<std::pair<std::size_t, std::size_t>>;
  EXPECT_EQ(bisection_order(0), Order{});
  EXPECT_EQ(bisection_order(1), (Order{{0, 0}}));
  EXPECT_EQ(bisection_order(2), (Order{{0, 0}, {1, 0}}));
  EXPECT_EQ(bisection_order(4), (Order{{0, 0}, {3, 0}, {1, 1}, {2, 2}}));
  // Every index appears exactly once.
  const Order order = bisection_order(7);
  std::vector<std::size_t> indices;
  for (const auto& [index, depth] : order) indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(SearchStrategyTest, FactoryResolvesNamesAndRejectsUnknown) {
  EXPECT_EQ(make_strategy("grid")->name(), "grid");
  EXPECT_EQ(make_strategy("random")->name(), "random");
  EXPECT_EQ(make_strategy("pareto")->name(), "pareto");
  EXPECT_THROW(make_strategy("simulated-annealing"), Error);
}

// --- SearchDriver ------------------------------------------------------------

SearchJob micro_search_job() {
  SearchJob job;
  job.space = micro_space();
  job.batch = 2;
  return job;
}

/// Every byte a search produces, in grid order (mirrors dse_test's digest).
std::string digest(const std::vector<DsePoint>& points) {
  std::string out;
  for (const DsePoint& point : points) {
    out += std::to_string(point.index) + "|";
    out += std::to_string(point.input_seed) + "|";
    out += point.ok ? point.report.summary() : "FAILED:" + point.error;
    out += "\n";
  }
  return out;
}

TEST(SearchDriverTest, GridStrategyReproducesTheDenseEngineSweep) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  const SearchJob job = micro_search_job();

  DseJob dense_job;
  dense_job.mg_sizes = job.space.mg_sizes;
  dense_job.flit_sizes = job.space.flit_sizes;
  dense_job.strategies = job.space.strategies;
  dense_job.batch = job.batch;
  const DseResult dense = DseEngine(std::size_t{2}).run(model, base, dense_job);

  SearchDriver::Options options;
  options.engine.num_threads = 2;
  GridStrategy grid;
  const SearchResult result = SearchDriver(options).run(model, base, grid, job);

  EXPECT_EQ(result.strategy, "grid");
  EXPECT_EQ(result.evaluations(), dense.points.size());
  EXPECT_EQ(digest(result.points), digest(dense.points));
  EXPECT_EQ(result.stats.evaluated, dense.stats.evaluated);
}

TEST(SearchDriverTest, BudgetCapsEvaluationsAndResolvesToSpaceSize) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job = micro_search_job();
  job.budget = 3;
  GridStrategy grid;
  const SearchResult result = SearchDriver().run(model, base, grid, job);
  EXPECT_EQ(result.budget, 3u);
  EXPECT_EQ(result.evaluations(), 3u);
  // Grid order: the budgeted prefix.
  EXPECT_EQ(result.points[0].index, 0u);
  EXPECT_EQ(result.points[2].index, 2u);

  job.budget = 10'000;  // clamped to the space
  GridStrategy grid2;
  const SearchResult full = SearchDriver().run(model, base, grid2, job);
  EXPECT_EQ(full.budget, 8u);
  EXPECT_EQ(full.evaluations(), 8u);
}

TEST(SearchDriverTest, EmptyObjectivesAreRejectedBeforeAnyEvaluation) {
  const graph::Graph model = models::micro_cnn({});
  SearchJob job = micro_search_job();
  job.objectives = {};
  std::size_t evaluated = 0;
  job.on_point = [&](const DsePoint&) { ++evaluated; };
  GridStrategy grid;
  EXPECT_THROW(
      SearchDriver().run(model, arch::ArchConfig::cimflow_default(), grid, job), Error);
  EXPECT_EQ(evaluated, 0u);  // failed fast, no compile/simulate work wasted
}

TEST(SearchDriverTest, RerunsAreByteIdentical) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job = micro_search_job();
  job.budget = 6;
  ParetoRefineStrategy refine1, refine2;
  SearchDriver::Options serial, parallel;
  serial.engine.num_threads = 1;
  parallel.engine.num_threads = 3;
  const SearchResult a = SearchDriver(serial).run(model, base, refine1, job);
  const SearchResult b = SearchDriver(parallel).run(model, base, refine2, job);
  EXPECT_EQ(digest(a.points), digest(b.points));
  EXPECT_EQ(a.archive.ids(), b.archive.ids());
  EXPECT_EQ(a.to_json(false).dump(), b.to_json(false).dump());
}

TEST(SearchDriverTest, FailedPointsAreRecordedButNeverOnTheFront) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job;
  job.space.mg_sizes = {8, -1};  // mg = -1 fails ArchConfig validation
  job.space.flit_sizes = {8};
  job.space.strategies = {compiler::Strategy::kGeneric};
  job.batch = 2;
  GridStrategy grid;
  const SearchResult result = SearchDriver().run(model, base, grid, job);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.stats.evaluated, 1u);
  EXPECT_EQ(result.stats.failed, 1u);
  EXPECT_FALSE(result.points[1].ok);
  EXPECT_EQ(result.archive.ids(), (std::vector<std::size_t>{0}));
}

TEST(SearchDriverTest, StreamsPointsProgressAndFrontUpdates) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job = micro_search_job();
  std::vector<std::size_t> seen;
  std::vector<std::size_t> progress;
  std::size_t front_updates = 0;
  job.on_point = [&](const DsePoint& p) { seen.push_back(p.index); };
  job.progress = [&](std::size_t done, std::size_t budget) {
    EXPECT_EQ(budget, 8u);
    progress.push_back(done);
  };
  job.on_front = [&](const ParetoArchive& archive) {
    EXPECT_FALSE(archive.empty());
    ++front_updates;
  };
  GridStrategy grid;
  const SearchResult result = SearchDriver().run(model, base, grid, job);
  EXPECT_EQ(seen.size(), result.evaluations());
  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress.back(), 8u);
  for (std::size_t i = 1; i < progress.size(); ++i) EXPECT_LT(progress[i - 1], progress[i]);
  EXPECT_GE(front_updates, 1u);
}

TEST(SearchDriverTest, ExactTiesAllCountAsFrontEquivalent) {
  // Two grid points with one software configuration produce byte-identical
  // reports; the archive keeps one representative, but displays must star
  // both — an equally-optimal configuration is not dominated.
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job;
  job.space.mg_sizes = {8};
  job.space.flit_sizes = {8, 8};
  job.space.strategies = {compiler::Strategy::kGeneric};
  job.batch = 2;
  GridStrategy grid;
  const SearchResult result = SearchDriver().run(model, base, grid, job);
  EXPECT_EQ(result.archive.size(), 1u);
  EXPECT_EQ(result.front_equivalent, (std::vector<std::size_t>{0, 1}));
  const std::vector<DsePoint> ok = result.ok_points();
  EXPECT_EQ(result.front_positions(ok), (std::vector<std::size_t>{0, 1}));
}

TEST(SearchDriverTest, AreaObjectiveUsesTheArchitectureEstimate) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job = micro_search_job();
  job.objectives = {Objective::kLatency, Objective::kEnergy, Objective::kArea};
  GridStrategy grid;
  const SearchResult result = SearchDriver().run(model, base, grid, job);
  ASSERT_FALSE(result.archive.empty());
  for (const ParetoEntry& entry : result.archive.entries()) {
    ASSERT_EQ(entry.objectives.size(), 3u);
    EXPECT_GT(entry.objectives[2], 0.0);  // mm² is always positive
  }
  // A smaller MG at equal latency/energy would shrink area; at minimum the
  // 3-objective front is a superset of the 2-objective one.
  GridStrategy grid2;
  SearchJob plane = micro_search_job();
  const SearchResult two = SearchDriver().run(model, base, grid2, plane);
  EXPECT_GE(result.archive.size(), two.archive.size());
}

// The acceptance gate (ISSUE 3): on a Fig. 7-shaped design space the
// Pareto-refining strategy must recover a front equal to or dominating the
// dense grid's front from at most 50% of the grid evaluations.
TEST(SearchDriverTest, ParetoRefineRecoversDenseFrontAtHalfTheBudget) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job;
  job.space.mg_sizes = {4, 8, 12, 16};
  job.space.flit_sizes = {8, 16};
  job.space.strategies = {compiler::Strategy::kGeneric,
                          compiler::Strategy::kDpOptimized};
  job.batch = 2;

  GridStrategy grid;
  const SearchResult dense = SearchDriver().run(model, base, grid, job);
  ASSERT_EQ(dense.evaluations(), 16u);

  ParetoRefineStrategy refine;
  job.budget = job.space.size() / 2;
  const SearchResult adaptive = SearchDriver().run(model, base, refine, job);

  EXPECT_LE(adaptive.evaluations(), dense.evaluations() / 2);
  EXPECT_TRUE(adaptive.archive.covers_front(dense.archive))
      << "adaptive front misses part of the dense front";
}

TEST(SearchDriverTest, CompilesEachSoftwareConfigurationAtMostOnceAcrossBatches) {
  // The driver hoists the in-memory program memo to search scope, so a
  // multi-batch adaptive search without a cache-dir never recompiles a
  // software configuration a previous batch already compiled: total compiler
  // invocations are bounded by the distinct configurations in the space —
  // here the flit axis repeats one value, so half the points duplicate the
  // other half's configuration no matter how batches slice them.
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  SearchJob job;
  job.space.mg_sizes = {4, 8};
  job.space.flit_sizes = {8, 8};  // duplicated on purpose
  job.space.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  job.batch = 2;

  ParetoRefineStrategy refine;  // proposes several small batches
  const SearchResult result = SearchDriver().run(model, base, refine, job);
  ASSERT_GT(result.evaluations(), 0u);
  const std::size_t distinct_configs =
      job.space.mg_sizes.size() * /*distinct flits*/ 1 * job.space.strategies.size();
  EXPECT_LE(result.stats.compile_cache_misses, distinct_configs);
  EXPECT_EQ(result.stats.compile_cache_hits + result.stats.compile_cache_misses,
            result.evaluations());
}

}  // namespace
}  // namespace cimflow::search
