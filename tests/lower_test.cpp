// Tests for the code-generation backend: constant caching, loop emission,
// register allocation under pressure (spilling), and branch fixup — verified
// by running the generated code on the simulator and checking architectural
// effects.
#include <gtest/gtest.h>

#include "cimflow/compiler/layout.hpp"
#include "cimflow/compiler/lower.hpp"
#include "cimflow/ir/ir.hpp"
#include "cimflow/sim/simulator.hpp"

namespace cimflow::compiler {
namespace {

arch::ArchConfig small_arch() {
  arch::ChipParams chip;
  chip.core_count = 4;
  chip.mesh_cols = 2;
  chip.global_mem_banks = 2;
  return arch::ArchConfig(chip, arch::CoreParams{}, arch::UnitParams{},
                          arch::EnergyParams{});
}

/// Runs `builder`'s finalized code on core 0 and returns local memory bytes
/// [0, n) afterwards.
std::vector<std::uint8_t> run_and_dump_local(const arch::ArchConfig& arch,
                                             CodeBuilder& builder, std::int64_t n) {
  SegmentPlanner segments(arch);
  // Move the result to global so we can read it back through the output API.
  const auto out_addr = builder.li(0);  // global 0
  const auto local0 = builder.li(
      static_cast<std::int64_t>(isa::make_local_address(0)));
  builder.mem_cpy(out_addr, local0, n);
  builder.halt();

  isa::Program program(arch.chip().core_count);
  program.cores[0].code = builder.finalize(segments.offset("spill"));
  for (std::int64_t c = 1; c < arch.chip().core_count; ++c) {
    program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
  }
  program.batch = 1;
  program.global_image.assign(4096, 0);
  program.output_global_offset = 0;
  program.output_bytes_per_image = n;
  sim::SimOptions options;
  options.functional = true;
  sim::Simulator simulator(arch, options);
  simulator.run(program, {std::vector<std::uint8_t>{}});
  return simulator.output(program, 0);
}

TEST(CodeBuilderTest, ConstantCacheReusesRegisters) {
  CodeBuilder builder(small_arch());
  const auto a = builder.li(1234);
  const auto b = builder.li(1234);
  const auto c = builder.li(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  builder.clear_caches();
  EXPECT_NE(builder.li(1234), a);
}

TEST(CodeBuilderTest, LoopProducesCorrectTripCount) {
  // sum = 0; for i in [0, 37): sum += 2  => 74, stored to local[0].
  const arch::ArchConfig arch = small_arch();
  CodeBuilder builder(arch);
  const auto sum = builder.fresh();
  builder.sc_op(isa::ScalarFunct::kAdd, sum, builder.li(0), builder.li(0));
  CodeBuilder::Loop loop = builder.loop_begin(0, 37);
  builder.sc_addi(isa::ScalarFunct::kAdd, sum, sum, 2);
  builder.loop_end(loop);
  // local[0] = sum (SC_SW needs an address register).
  const auto addr = builder.li(static_cast<std::int64_t>(isa::make_local_address(0)));
  {
    // store via computing addr then SC_SW through emitted instruction
    // (CodeBuilder has no sc_sw helper; use a vector fill of length 1 with
    // the value instead).
    builder.vec_op(isa::VecFunct::kFill32, addr, addr, sum, 1);
  }
  const auto out = run_and_dump_local(arch, builder, 4);
  EXPECT_EQ(out[0], 74u);
}

TEST(CodeBuilderTest, NestedLoopsAndAddressArithmetic) {
  // local[i*4 + j] = i*10 + j for i in [0,3), j in [0,4).
  const arch::ArchConfig arch = small_arch();
  CodeBuilder builder(arch);
  const auto base = builder.li(static_cast<std::int64_t>(isa::make_local_address(0)));
  CodeBuilder::Loop outer = builder.loop_begin(0, 3);
  CodeBuilder::Loop inner = builder.loop_begin(0, 4);
  const auto value = builder.fresh();
  builder.sc_addi(isa::ScalarFunct::kMul, value, outer.iv, 10);
  builder.sc_op(isa::ScalarFunct::kAdd, value, value, inner.iv);
  auto addr = builder.add_scaled(base, outer.iv, 4);
  addr = builder.add_scaled(addr, inner.iv, 1);
  builder.vec_op(isa::VecFunct::kFill8, addr, addr, value, 1);
  builder.loop_end(inner);
  builder.loop_end(outer);
  const auto out = run_and_dump_local(arch, builder, 12);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(out[static_cast<std::size_t>(i * 4 + j)],
                static_cast<std::uint8_t>(i * 10 + j));
    }
  }
}

TEST(CodeBuilderTest, SpillingPreservesSemantics) {
  // Create far more live values than physical registers: v_k = k+1 for 60
  // values, all defined before use, summed afterwards. The allocator must
  // spill and still produce sum = 60*61/2 = 1830.
  const arch::ArchConfig arch = small_arch();
  CodeBuilder builder(arch);
  std::vector<CodeBuilder::VReg> values;
  for (int k = 0; k < 60; ++k) {
    const auto v = builder.fresh();
    builder.sc_addi(isa::ScalarFunct::kAdd, v, builder.li(0), 0);
    builder.sc_addi(isa::ScalarFunct::kAdd, v, v, k + 1);
    values.push_back(v);
  }
  auto sum = builder.li(0);
  for (const auto v : values) {
    const auto next = builder.fresh();
    builder.sc_op(isa::ScalarFunct::kAdd, next, sum, v);
    sum = next;
  }
  const auto addr = builder.li(static_cast<std::int64_t>(isa::make_local_address(0)));
  builder.vec_op(isa::VecFunct::kFill32, addr, addr, sum, 1);
  const auto out = run_and_dump_local(arch, builder, 4);
  const std::uint32_t result = out[0] | (out[1] << 8) | (out[2] << 16) | (out[3] << 24);
  EXPECT_EQ(result, 1830u);
}

TEST(CodeBuilderTest, SpilledLoopCounterStillIterates) {
  // Force the loop counter itself to spill by keeping 40 long-lived values
  // across the loop.
  const arch::ArchConfig arch = small_arch();
  CodeBuilder builder(arch);
  std::vector<CodeBuilder::VReg> pinned;
  for (int k = 0; k < 40; ++k) {
    const auto v = builder.fresh();
    builder.sc_addi(isa::ScalarFunct::kAdd, v, builder.li(0), k);
    pinned.push_back(v);
  }
  const auto acc = builder.fresh();
  builder.sc_op(isa::ScalarFunct::kAdd, acc, builder.li(0), builder.li(0));
  CodeBuilder::Loop loop = builder.loop_begin(0, 25);
  builder.sc_addi(isa::ScalarFunct::kAdd, acc, acc, 3);
  builder.loop_end(loop);
  // Keep the pinned values alive past the loop, and fold two in.
  builder.sc_op(isa::ScalarFunct::kAdd, acc, acc, pinned[39]);  // +39
  builder.sc_op(isa::ScalarFunct::kAdd, acc, acc, pinned[1]);   // +1
  const auto addr = builder.li(static_cast<std::int64_t>(isa::make_local_address(0)));
  builder.vec_op(isa::VecFunct::kFill32, addr, addr, acc, 1);
  const auto out = run_and_dump_local(arch, builder, 4);
  EXPECT_EQ(out[0], 115u);  // 25*3 + 39 + 1
}

TEST(CodeBuilderTest, SRegCacheSkipsRedundantWrites) {
  CodeBuilder builder(small_arch());
  builder.set_sreg(isa::SReg::kActiveRows, 512);
  const std::size_t after_first = builder.size();
  builder.set_sreg(isa::SReg::kActiveRows, 512);  // cached, no emission
  EXPECT_EQ(builder.size(), after_first);
  builder.set_sreg(isa::SReg::kActiveRows, 256);  // new value emits
  EXPECT_GT(builder.size(), after_first);
}

TEST(LowerFuncTest, LowersLoopNestWithAffineAddressing) {
  // IR: for i in [0,8): fill out[i*2 .. i*2+2) with 9. Then check memory.
  const arch::ArchConfig arch = small_arch();
  SegmentPlanner segments(arch);
  const std::int64_t out_off = segments.allocate("out", 64);
  ir::Func func;
  ir::Op loop = ir::make_for("i", 0, 8);
  ir::Op fill("mem.fill");
  fill.set("buf", std::string("out"));
  fill.set("index", ir::AffineExpr::var("i", 2));
  fill.set("len", std::int64_t{2});
  fill.set("value", std::int64_t{9});
  loop.body.push_back(std::move(fill));
  func.body.push_back(std::move(loop));

  CodeBuilder builder(arch);
  lower_func(func, segments, builder);
  const auto out_addr = builder.li(0);
  const auto local = builder.li(
      static_cast<std::int64_t>(isa::make_local_address(
          static_cast<std::uint32_t>(out_off))));
  builder.mem_cpy(out_addr, local, 16);
  builder.halt();

  isa::Program program(arch.chip().core_count);
  program.cores[0].code = builder.finalize(segments.offset("spill"));
  for (std::int64_t c = 1; c < 4; ++c) {
    program.cores[static_cast<std::size_t>(c)].code.push_back(isa::Instruction::halt());
  }
  program.batch = 1;
  program.global_image.assign(256, 0);
  program.output_bytes_per_image = 16;
  sim::SimOptions options;
  options.functional = true;
  sim::Simulator simulator(arch, options);
  simulator.run(program, {std::vector<std::uint8_t>{}});
  const auto out = simulator.output(program, 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 9u);
}

}  // namespace
}  // namespace cimflow::compiler
