// Unit tests for the machine-readable results pipeline: BENCH_*.json
// artifacts, the bench_diff comparison logic behind the CI regression gate,
// report serialization, and the file-I/O error surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cimflow/core/dse.hpp"
#include "cimflow/sim/report.hpp"
#include "cimflow/support/artifact.hpp"
#include "cimflow/support/io.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"

namespace cimflow {
namespace {

BenchArtifact sample_artifact() {
  BenchArtifact artifact;
  artifact.bench = "sample";
  artifact.set_exact("run.cycles", 123456, "cycles");
  artifact.set_exact("run.instructions", 7890);
  artifact.set_float("run.energy_mj", 1.2345678901234567, "mJ");
  artifact.set_info("run.wall_ms", 52.5, "ms");
  return artifact;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// --- artifact serialization --------------------------------------------------

TEST(BenchArtifactTest, JsonRoundTrip) {
  const BenchArtifact artifact = sample_artifact();
  const BenchArtifact again = BenchArtifact::from_json(Json::parse(artifact.dump()));
  EXPECT_EQ(again, artifact);
}

TEST(BenchArtifactTest, DumpIsDeterministic) {
  EXPECT_EQ(sample_artifact().dump(), sample_artifact().dump());
}

TEST(BenchArtifactTest, SaveLoadRoundTrip) {
  const std::string path = temp_path("artifact_roundtrip.json");
  const BenchArtifact artifact = sample_artifact();
  artifact.save(path);
  EXPECT_EQ(BenchArtifact::load(path), artifact);
  std::remove(path.c_str());
}

TEST(BenchArtifactTest, SaveToUnwritablePathThrowsWithPath) {
  const BenchArtifact artifact = sample_artifact();
  const std::string path = "/nonexistent-cimflow-dir/BENCH_x.json";
  try {
    artifact.save(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(BenchArtifactTest, LoadRejectsWrongSchema) {
  const std::string path = temp_path("artifact_bad_schema.json");
  write_text_file(path, R"({"schema": "something.else", "bench": "x", "metrics": {}})");
  EXPECT_THROW(BenchArtifact::load(path), Error);
  std::remove(path.c_str());
}

TEST(BenchArtifactTest, LoadMissingFileThrowsIoError) {
  try {
    BenchArtifact::load("/no/such/file.json");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

// --- diff (the bench_diff gate) ----------------------------------------------

TEST(BenchDiffTest, IdenticalArtifactsPass) {
  const BenchDiffResult diff = diff_artifacts(sample_artifact(), sample_artifact());
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.violations, 0u);
  EXPECT_EQ(diff.compared, 3u);  // info metric is not gated
  EXPECT_TRUE(diff.table().empty());
}

TEST(BenchDiffTest, ExactMetricChangeIsViolation) {
  BenchArtifact candidate = sample_artifact();
  candidate.set_exact("run.cycles", 123457, "cycles");  // off by one cycle
  const BenchDiffResult diff = diff_artifacts(sample_artifact(), candidate);
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.violations, 1u);
  EXPECT_NE(diff.table().find("run.cycles"), std::string::npos);
  EXPECT_NE(diff.table().find("VIOLATION"), std::string::npos);
}

TEST(BenchDiffTest, RtolMetricWithinTolerancePasses) {
  BenchArtifact candidate = sample_artifact();
  const double base = sample_artifact().metrics.at("run.energy_mj").value;
  candidate.set_float("run.energy_mj", base * (1 + 1e-8), "mJ");  // default rtol 1e-6
  EXPECT_TRUE(diff_artifacts(sample_artifact(), candidate).ok());
}

TEST(BenchDiffTest, RtolMetricBeyondToleranceFails) {
  BenchArtifact candidate = sample_artifact();
  const double base = sample_artifact().metrics.at("run.energy_mj").value;
  candidate.set_float("run.energy_mj", base * 1.05, "mJ");  // 5% regression
  const BenchDiffResult diff = diff_artifacts(sample_artifact(), candidate);
  EXPECT_FALSE(diff.ok());
  // ... unless the caller loosens the gate explicitly.
  EXPECT_TRUE(diff_artifacts(sample_artifact(), candidate, 0.1).ok());
}

TEST(BenchDiffTest, MissingMetricIsViolation) {
  BenchArtifact candidate = sample_artifact();
  candidate.metrics.erase("run.instructions");
  const BenchDiffResult diff = diff_artifacts(sample_artifact(), candidate);
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.violations, 1u);
  EXPECT_NE(diff.table().find("MISSING"), std::string::npos);
}

TEST(BenchDiffTest, AddedMetricIsReportedButAllowed) {
  BenchArtifact candidate = sample_artifact();
  candidate.set_exact("run.new_counter", 1);
  const BenchDiffResult diff = diff_artifacts(sample_artifact(), candidate);
  EXPECT_TRUE(diff.ok());
  EXPECT_NE(diff.table().find("run.new_counter"), std::string::npos);
  EXPECT_NE(diff.table().find("added"), std::string::npos);
}

TEST(BenchDiffTest, InfoMetricNeverGates) {
  BenchArtifact candidate = sample_artifact();
  candidate.set_info("run.wall_ms", 9999.0, "ms");  // 190x slower wall-clock
  EXPECT_TRUE(diff_artifacts(sample_artifact(), candidate).ok());
}

TEST(BenchDiffTest, BenchNameMismatchIsViolation) {
  BenchArtifact candidate = sample_artifact();
  candidate.bench = "other";
  EXPECT_FALSE(diff_artifacts(sample_artifact(), candidate).ok());
}

TEST(BenchDiffTest, ZeroBaselineHandled) {
  BenchArtifact baseline;
  baseline.bench = "z";
  baseline.set_exact("m", 0);
  BenchArtifact same = baseline;
  EXPECT_TRUE(diff_artifacts(baseline, same).ok());
  BenchArtifact moved = baseline;
  moved.set_exact("m", 1e-12);
  EXPECT_FALSE(diff_artifacts(baseline, moved).ok());
}

// --- report serialization ----------------------------------------------------

sim::SimReport sample_report() {
  sim::SimReport report;
  report.cycles = 4799;
  report.instructions = 9266;
  report.mvm_count = 162;
  report.macs = 258528;
  report.images = 2;
  report.energy.cim = 100.5;
  report.energy.noc = 7.25;
  report.energy.leakage = 3.5;
  report.cores.resize(2);
  report.cores[1].instructions = 42;
  return report;
}

TEST(ReportJsonTest, SimReportToJsonHasCountersAndDerived) {
  const Json doc = Json::parse(sample_report().to_json().dump());
  EXPECT_EQ(doc.at("cycles").as_int(), 4799);
  EXPECT_EQ(doc.at("images").as_int(), 2);
  EXPECT_DOUBLE_EQ(doc.at("tops").as_double(), sample_report().tops());
  EXPECT_DOUBLE_EQ(doc.at("energy").at("noc_pj").as_double(), 7.25);
  EXPECT_DOUBLE_EQ(doc.at("energy").at("total_pj").as_double(),
                   sample_report().energy.total());
  EXPECT_EQ(doc.at("cores").as_array().size(), 2u);
  EXPECT_EQ(doc.at("cores").as_array()[1].at("instructions").as_int(), 42);
}

TEST(ReportJsonTest, CsvRowMatchesHeader) {
  const auto columns = [](const std::string& line) { return split(line, ',', true).size(); };
  EXPECT_EQ(columns(sample_report().to_csv_row()), columns(sim::SimReport::csv_header()));
}

TEST(ReportJsonTest, DseResultJsonAndCsv) {
  DseResult result;
  result.stats.total_points = 2;
  result.stats.evaluated = 1;
  result.stats.failed = 1;
  DsePoint ok_point;
  ok_point.index = 0;
  ok_point.ok = true;
  ok_point.report.sim = sample_report();
  DsePoint bad_point;
  bad_point.index = 1;
  bad_point.ok = false;
  bad_point.error = "infeasible, mg too large";
  result.points = {ok_point, bad_point};

  const Json doc = Json::parse(result.to_json().dump());
  EXPECT_EQ(doc.at("stats").at("evaluated").as_int(), 1);
  EXPECT_EQ(doc.at("points").as_array().size(), 2u);
  EXPECT_TRUE(doc.at("points").as_array()[0].at("ok").as_bool());
  EXPECT_EQ(doc.at("points").as_array()[1].at("error").as_string(),
            "infeasible, mg too large");

  const std::vector<std::string> lines = split(result.to_csv(), '\n');
  ASSERT_EQ(lines.size(), 3u);  // header + 2 points
  EXPECT_TRUE(starts_with(lines[0], "index,"));
  // The error message contains a comma, so the CSV field must be quoted.
  EXPECT_NE(lines[2].find("\"infeasible, mg too large\""), std::string::npos);
}

// --- io ----------------------------------------------------------------------

TEST(IoTest, WriteReadRoundTrip) {
  const std::string path = temp_path("io_roundtrip.txt");
  write_text_file(path, "hello\nworld");
  EXPECT_EQ(read_text_file(path), "hello\nworld");
  std::remove(path.c_str());
}

TEST(IoTest, EnsureWritableDoesNotClobber) {
  const std::string path = temp_path("io_keep.txt");
  write_text_file(path, "keep me");
  ensure_writable(path);
  EXPECT_EQ(read_text_file(path), "keep me");
  std::remove(path.c_str());
  EXPECT_THROW(ensure_writable("/no/such/dir/x.txt"), Error);
}

TEST(IoTest, EnsureWritableLeavesNoEmptyFileBehind) {
  const std::string path = temp_path("io_probe_only.txt");
  std::remove(path.c_str());
  ensure_writable(path);
  EXPECT_THROW(read_text_file(path), Error);  // probe file was removed again
}

}  // namespace
}  // namespace cimflow
