// Tests for the tracing/metrics subsystem: the runtime-gated span API
// (zero-op when no Collector is installed, aggregation when one is), the
// fixed log-scale latency histogram behind the daemon's `metrics` verb, and
// the hard no-perturbation invariant — a traced evaluation produces
// byte-identical reports and functional verdicts to an untraced one at any
// simulator thread count, and the simulator timeline itself (the trace
// file's pid-0 track) is byte-stable across reruns and thread counts. Only
// the host track (pid 1, wall-clock compile spans) may vary run to run.
#include "cimflow/support/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/io.hpp"

namespace cimflow {
namespace {

// --- span / collector API ----------------------------------------------------

TEST(TraceTest, DisabledTracingIsANoOp) {
  ASSERT_EQ(trace::current(), nullptr);
  {
    CIMFLOW_TRACE_SPAN("never.recorded");
    trace::counter_add("never.counted", 1.0);
  }
  EXPECT_EQ(trace::current(), nullptr);
}

TEST(TraceTest, CollectorAggregatesSpansByName) {
  trace::Collector collector;
  {
    trace::Scope scope(&collector);
    for (int i = 0; i < 3; ++i) {
      CIMFLOW_TRACE_SPAN("phase.a");
    }
    CIMFLOW_TRACE_SPAN("phase.b");
    trace::counter_add("widgets", 2.0);
    trace::counter_add("widgets", 3.0);
  }
  const std::vector<trace::PhaseTiming> timings = collector.phase_timings();
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_EQ(timings[0].name, "phase.a");  // name-sorted
  EXPECT_EQ(timings[0].count, 3);
  EXPECT_GE(timings[0].seconds, 0.0);
  EXPECT_EQ(timings[1].name, "phase.b");
  EXPECT_EQ(timings[1].count, 1);
  EXPECT_EQ(collector.spans().size(), 4u);
  EXPECT_DOUBLE_EQ(collector.counters().at("widgets"), 5.0);
}

TEST(TraceTest, ScopeNestsAndRestores) {
  trace::Collector outer;
  trace::Collector inner;
  trace::Scope outer_scope(&outer);
  EXPECT_EQ(trace::current(), &outer);
  {
    trace::Scope inner_scope(&inner);
    EXPECT_EQ(trace::current(), &inner);
    {
      trace::Scope shield(nullptr);  // disables tracing for a subtree
      EXPECT_EQ(trace::current(), nullptr);
      CIMFLOW_TRACE_SPAN("shielded");
    }
    EXPECT_EQ(trace::current(), &inner);
  }
  EXPECT_EQ(trace::current(), &outer);
  EXPECT_TRUE(inner.spans().empty());
  EXPECT_TRUE(outer.spans().empty());
}

TEST(TraceTest, SharedCollectorAcceptsSpansFromManyThreads) {
  trace::Collector collector;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector] {
      trace::Scope scope(&collector);
      for (int i = 0; i < 100; ++i) {
        CIMFLOW_TRACE_SPAN("worker.span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<trace::PhaseTiming> timings = collector.phase_timings();
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_EQ(timings[0].count, 400);
  EXPECT_EQ(collector.spans().size(), 400u);
}

TEST(TraceTest, RetentionCapDropsSpansButKeepsAggregating) {
  trace::Collector collector;
  const std::size_t total = trace::Collector::kMaxSpans + 1000;
  for (std::size_t i = 0; i < total; ++i) collector.record("storm", 0, 1);
  EXPECT_EQ(collector.spans().size(), trace::Collector::kMaxSpans);
  EXPECT_EQ(collector.dropped_spans(), 1000u);
  const std::vector<trace::PhaseTiming> timings = collector.phase_timings();
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_EQ(timings[0].count, static_cast<std::int64_t>(total));
}

// --- latency histogram -------------------------------------------------------

TEST(LatencyHistogramTest, SubMillisecondSamplesRegister) {
  trace::LatencyHistogram h;
  h.record_ns(500);      // 0.5 µs -> first bucket
  h.record_ns(5'000);    // 5 µs
  h.record_ns(900'000);  // 0.9 ms — the kind the old ms counters truncated
  EXPECT_EQ(h.count(), 3);
  EXPECT_NEAR(h.sum_seconds(), 905.5e-6, 1e-12);
  EXPECT_GT(h.percentile_seconds(0.5), 0.0);
}

TEST(LatencyHistogramTest, PercentilesWalkTheBuckets) {
  trace::LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record_ns(1'500);      // <= 2 µs bucket
  for (int i = 0; i < 10; ++i) h.record_ns(3'000'000);  // <= 4.096 ms bucket
  EXPECT_EQ(h.count(), 100);
  // p50 lands in the 2 µs bucket (conservative upper bound)...
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.50), 2e-6);
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.90), 2e-6);
  // ...and p99 in the 4.096 ms bucket.
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.99), 0.004096);
}

TEST(LatencyHistogramTest, OverflowSamplesClampToLastFiniteBound) {
  trace::LatencyHistogram h;
  h.record_ns(std::int64_t{2} * 1000 * 1000 * 1000 * 1000);  // ~33 min
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.bucket_count(trace::LatencyHistogram::kFiniteBuckets), 1);
  EXPECT_DOUBLE_EQ(h.percentile_seconds(0.99),
                   trace::LatencyHistogram::bucket_upper_seconds(
                       trace::LatencyHistogram::kFiniteBuckets - 1));
}

// --- trace determinism (the hard invariant) ----------------------------------

std::string trace_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

FlowOptions traced_options(const std::string& path, std::int64_t sim_threads) {
  FlowOptions options;
  options.batch = 2;
  options.validate = true;  // functional outputs checked bit-exactly
  options.eval.sim_threads = sim_threads;
  options.trace_path = path;
  return options;
}

/// The trace document's simulator track: every pid-0 event, dumped
/// deterministically. Sim timestamps are cycles, so this slice of the file
/// must be byte-stable across reruns and thread counts; only the pid-1 host
/// track carries wall-clock (info-only, varies run to run).
std::string sim_track_bytes(const std::string& path) {
  const Json root = Json::parse(read_text_file(path));
  JsonArray sim_events;
  for (const Json& event : root.at("traceEvents").as_array()) {
    if (event.at("pid").as_int() == 0) sim_events.push_back(event);
  }
  return Json(std::move(sim_events)).dump();
}

TEST(TraceDeterminismTest, TracedRunsMatchUntracedBytesAtAnyThreadCount) {
  const graph::Graph model = models::micro_cnn({});
  Flow flow(arch::ArchConfig::cimflow_default());

  const EvaluationReport baseline = flow.evaluate(model, traced_options("", 1));
  ASSERT_TRUE(baseline.validation_passed);
  const std::string expect = baseline.to_json().dump();

  std::string first_track;
  for (const std::int64_t threads : {1, 2, 8}) {
    const std::string path =
        trace_path("trace_t" + std::to_string(threads) + ".json");
    const EvaluationReport traced =
        flow.evaluate(model, traced_options(path, threads));
    // Tracing observes the committed event order; it never changes it. The
    // full report — SimReport counters, energy, validation verdict — must be
    // byte-identical to the untraced serial run.
    EXPECT_EQ(traced.to_json().dump(), expect) << "sim_threads=" << threads;
    EXPECT_TRUE(traced.validation_passed);
    // And the simulator timeline itself is invariant across thread counts.
    const std::string track = sim_track_bytes(path);
    if (first_track.empty()) {
      first_track = track;
    } else {
      EXPECT_EQ(track, first_track) << "sim_threads=" << threads;
    }
    std::remove(path.c_str());
  }
  ASSERT_FALSE(first_track.empty());
}

TEST(TraceDeterminismTest, TraceFileIsWellFormedAndStableAcrossReruns) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig arch = arch::ArchConfig::cimflow_default();
  Flow flow(arch);

  const std::string path_a = trace_path("trace_rerun_a.json");
  const std::string path_b = trace_path("trace_rerun_b.json");
  flow.evaluate(model, traced_options(path_a, 1));
  flow.evaluate(model, traced_options(path_b, 1));

  const Json root = Json::parse(read_text_file(path_a));
  ASSERT_TRUE(root.contains("traceEvents"));
  const JsonArray& events = root.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  std::set<std::int64_t> slice_tracks;
  bool saw_instant = false;
  for (const Json& event : events) {
    // The jq-checkable trace-event schema: every event carries phase,
    // timestamp, process, and thread.
    ASSERT_TRUE(event.contains("ph")) << event.dump();
    ASSERT_TRUE(event.contains("ts"));
    ASSERT_TRUE(event.contains("pid"));
    ASSERT_TRUE(event.contains("tid"));
    if (event.at("pid").as_int() != 0) continue;
    const std::string ph = event.at("ph").as_string();
    if (ph == "X") slice_tracks.insert(event.at("tid").as_int());
    if (ph == "i") saw_instant = true;
  }
  // One run/blocked track per core: every core halts eventually, so every
  // core emits at least its final run slice.
  const std::int64_t cores = arch.chip().core_count;
  EXPECT_EQ(static_cast<std::int64_t>(slice_tracks.size()), cores);
  for (std::int64_t core = 0; core < cores; ++core) {
    EXPECT_TRUE(slice_tracks.count(core)) << "no slices for core " << core;
  }
  EXPECT_TRUE(saw_instant) << "no fabric instant events (send/bank/barrier)";

  // Rerunning the identical evaluation reproduces the simulator track
  // byte for byte.
  EXPECT_EQ(sim_track_bytes(path_a), sim_track_bytes(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace cimflow
