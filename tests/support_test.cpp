// Unit tests for the support library: dynamic bitset, JSON, strings,
// numeric helpers, RNG determinism and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>

#include "cimflow/support/bitset.hpp"
#include "cimflow/support/json.hpp"
#include "cimflow/support/numeric.hpp"
#include "cimflow/support/rng.hpp"
#include "cimflow/support/status.hpp"
#include "cimflow/support/strings.hpp"
#include "cimflow/support/table.hpp"

namespace cimflow {
namespace {

// --- DynBitset ---------------------------------------------------------------

TEST(DynBitsetTest, SetTestReset) {
  DynBitset bits(130);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  bits.set(0).set(64).set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(DynBitsetTest, ContainsAndIntersects) {
  DynBitset a(100), b(100);
  a.set(3).set(70).set(99);
  b.set(3).set(99);
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
  EXPECT_TRUE(a.intersects(b));
  DynBitset c(100);
  c.set(50);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.contains(DynBitset(100)));  // empty set is a subset
}

TEST(DynBitsetTest, Difference) {
  DynBitset a(70), b(70);
  a.set(1).set(65).set(69);
  b.set(65);
  const DynBitset d = a.difference(b);
  EXPECT_TRUE(d.test(1));
  EXPECT_FALSE(d.test(65));
  EXPECT_TRUE(d.test(69));
  EXPECT_EQ(d.count(), 2u);
}

TEST(DynBitsetTest, BitwiseOperators) {
  DynBitset a(10), b(10);
  a.set(1).set(2);
  b.set(2).set(3);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a ^ b).count(), 2u);
}

TEST(DynBitsetTest, FindFirstNext) {
  DynBitset bits(200);
  EXPECT_EQ(bits.find_first(), 200u);
  bits.set(5).set(64).set(150);
  EXPECT_EQ(bits.find_first(), 5u);
  EXPECT_EQ(bits.find_next(5), 64u);
  EXPECT_EQ(bits.find_next(64), 150u);
  EXPECT_EQ(bits.find_next(150), 200u);
}

TEST(DynBitsetTest, ForEachAscending) {
  DynBitset bits(128);
  bits.set(127).set(0).set(63).set(64);
  std::vector<std::size_t> seen;
  bits.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 127}));
  EXPECT_EQ(bits.to_indices(), seen);
}

TEST(DynBitsetTest, HashDistinguishes) {
  DynBitset a(64), b(64);
  a.set(1);
  b.set(2);
  EXPECT_NE(a.hash(), b.hash());
  DynBitset c(64);
  c.set(1);
  EXPECT_EQ(a.hash(), c.hash());
  EXPECT_EQ(a, c);
}

TEST(DynBitsetTest, ToString) {
  DynBitset bits(10);
  bits.set(1).set(7);
  EXPECT_EQ(bits.to_string(), "{1,7}");
}

// --- JSON ---------------------------------------------------------------------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(JsonTest, ParsesNested) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": false}], "c": {"d": 3}})");
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_EQ(doc.at("a").as_array()[2].at("b").as_bool(), false);
  EXPECT_EQ(doc.at("c").at("d").as_int(), 3);
}

TEST(JsonTest, SupportsComments) {
  const Json doc = Json::parse("{\n  // core count\n  \"cores\": 64\n}");
  EXPECT_EQ(doc.at("cores").as_int(), 64);
}

TEST(JsonTest, GetOrDefaults) {
  const Json doc = Json::parse(R"({"x": 5})");
  EXPECT_EQ(doc.get_or("x", std::int64_t{1}), 5);
  EXPECT_EQ(doc.get_or("y", std::int64_t{1}), 1);
  EXPECT_EQ(doc.get_or("z", std::string("d")), "d");
  EXPECT_EQ(doc.get_or("w", true), true);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("12abc"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("{} extra"), Error);
}

TEST(JsonTest, TypeErrors) {
  const Json doc = Json::parse(R"({"x": 1.5})");
  EXPECT_THROW(doc.at("x").as_string(), Error);
  EXPECT_THROW(doc.at("x").as_int(), Error);  // non-integral number
  EXPECT_THROW(doc.at("missing"), Error);
}

TEST(JsonTest, DumpRoundTrip) {
  const Json doc = Json::parse(R"({"b": [1, 2], "a": "x"})");
  const Json again = Json::parse(doc.dump());
  EXPECT_EQ(again.at("a").as_string(), "x");
  EXPECT_EQ(again.at("b").as_array()[1].as_int(), 2);
}

TEST(JsonTest, DumpRoundTripsNumbersExactly) {
  // dump() must be lossless: every double survives a dump/parse cycle
  // bit-exactly, including values %g's default precision would mangle.
  const double values[] = {0.0,       -0.0,     1.0 / 3.0,  2.5e-9,   1e300,
                           -1e-300,   3.141592653589793,    0.1,      -42.0,
                           9007199254740992.0,  -9007199254740993.0,  6.02e23};
  for (double v : values) {
    const Json round = Json::parse(Json(v).dump());
    EXPECT_EQ(round.as_double(), v) << Json(v).dump();
  }
  SplitMix64 rng(99);
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(static_cast<std::int64_t>(rng.next())) * 1e-7;
    EXPECT_EQ(Json::parse(Json(v).dump()).as_double(), v);
  }
}

TEST(JsonTest, DumpIntegersWithoutExponent) {
  EXPECT_EQ(Json(12.0).dump(), "12");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(std::int64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(Json::number_to_string(0.0), "0");
}

TEST(JsonTest, DumpEscapesStrings) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07 cr\r";
  const std::string dumped = Json(nasty).dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);  // control chars escaped
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0007"), std::string::npos);
  EXPECT_EQ(Json::parse(dumped).as_string(), nasty);
}

TEST(JsonTest, DumpNonFiniteAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(JsonTest, DumpIsDeterministic) {
  const char* text = R"({"z": [1.5, {"k": true}], "a": "v", "m": null})";
  EXPECT_EQ(Json::parse(text).dump(), Json::parse(Json::parse(text).dump()).dump());
}

// --- strings -------------------------------------------------------------------

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,b,,c", ',', true), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_TRUE(split("", ',').empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(StringsTest, JoinAndLower) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("cimflow", "cim"));
  EXPECT_FALSE(starts_with("cim", "cimflow"));
}

TEST(StringsTest, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(StringsTest, CsvField) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_field(""), "");
}

/// The Error's message, for asserting that parse failures quote their input.
std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "<no error thrown>";
}

TEST(StringsTest, ParseI64AcceptsStrictIntegersOnly) {
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("+5"), 5);  // std::from_chars alone rejects the plus
  EXPECT_EQ(parse_i64("-17"), -17);
  EXPECT_EQ(parse_i64("9223372036854775807"), INT64_MAX);

  // Everything std::stol would silently half-accept must throw.
  EXPECT_THROW(parse_i64("4x"), Error);
  EXPECT_THROW(parse_i64("12 "), Error);
  EXPECT_THROW(parse_i64(" 12"), Error);
  EXPECT_THROW(parse_i64(""), Error);
  EXPECT_THROW(parse_i64("+"), Error);
  EXPECT_THROW(parse_i64("0x10"), Error);
  EXPECT_THROW(parse_i64("9223372036854775808"), Error);  // INT64_MAX + 1
  // The offending text is quoted so a wrapped "--batch: ..." names both the
  // flag and the value.
  EXPECT_NE(error_message([] { parse_i64("4x"); }).find("'4x'"), std::string::npos);
}

TEST(StringsTest, ParseF64AcceptsStrictNumbersOnly) {
  EXPECT_DOUBLE_EQ(parse_f64("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_f64("+0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_f64("-3"), -3.0);
  EXPECT_DOUBLE_EQ(parse_f64("1e-3"), 1e-3);

  EXPECT_THROW(parse_f64("0.05x"), Error);
  EXPECT_THROW(parse_f64(""), Error);
  EXPECT_THROW(parse_f64("1.0 "), Error);
  EXPECT_NE(error_message([] { parse_f64("0.05x"); }).find("'0.05x'"),
            std::string::npos);
}

TEST(StringsTest, ParseI64ListRejectsEmptyElements) {
  EXPECT_EQ(parse_i64_list("4,8,12"), (std::vector<std::int64_t>{4, 8, 12}));
  EXPECT_EQ(parse_i64_list("16"), (std::vector<std::int64_t>{16}));

  // A stray comma is always a typo — silently dropping the empty piece would
  // run a sweep over the wrong grid.
  EXPECT_THROW(parse_i64_list("2,,8"), Error);
  EXPECT_THROW(parse_i64_list("2,8,"), Error);
  EXPECT_THROW(parse_i64_list(",2"), Error);
  EXPECT_THROW(parse_i64_list(""), Error);
  EXPECT_THROW(parse_i64_list("2,x"), Error);
  EXPECT_NE(error_message([] { parse_i64_list("2,,8"); }).find("'2,,8'"),
            std::string::npos);
}

// --- numeric -------------------------------------------------------------------

TEST(NumericTest, CeilDivAndAlign) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(align_up(13, 8), 16);
  EXPECT_EQ(align_up(16, 8), 16);
}

TEST(NumericTest, SaturateInt8) {
  EXPECT_EQ(saturate_int8(127), 127);
  EXPECT_EQ(saturate_int8(128), 127);
  EXPECT_EQ(saturate_int8(-128), -128);
  EXPECT_EQ(saturate_int8(-129), -128);
  EXPECT_EQ(saturate_int8(0), 0);
}

TEST(NumericTest, RoundingShiftMatchesReference) {
  // Property: rounding_shift_right rounds to nearest, ties away from zero.
  SplitMix64 rng(123);
  for (int i = 0; i < 2000; ++i) {
    // Accumulator-range values (the helper's documented domain is INT32
    // accumulations).
    const auto value = static_cast<std::int64_t>(static_cast<std::int32_t>(rng.next()));
    const int shift = static_cast<int>(rng.next_below(15)) + 1;
    const double expected = std::round(static_cast<double>(value) /
                                       static_cast<double>(std::int64_t{1} << shift));
    // std::round ties away from zero — same convention.
    EXPECT_EQ(rounding_shift_right(value, shift), static_cast<std::int32_t>(expected))
        << "value=" << value << " shift=" << shift;
  }
}

TEST(NumericTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

// --- RNG --------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, RangesRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- TextTable ----------------------------------------------------------------------

TEST(TextTableTest, RendersAligned) {
  TextTable table({"a", "long"});
  table.add_row({"xx", "y"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a  | long |"), std::string::npos);
  EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

}  // namespace
}  // namespace cimflow
