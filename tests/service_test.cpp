// Tests for the cimflowd evaluation daemon: wire-protocol parsing and event
// shapes, the error paths of the socket server (malformed JSON, unknown
// verbs, oversized request lines, queue-full rejection, disconnect
// mid-stream, graceful shutdown draining), and the warm-path acceptance
// properties — result payloads byte-identical to direct CLI-equivalent
// invocations, and repeated requests served from the shared program memo.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

#include "cimflow/arch/arch_config.hpp"
#include "cimflow/core/flow.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/search/driver.hpp"
#include "cimflow/search/strategy.hpp"
#include "cimflow/service/protocol.hpp"
#include "cimflow/service/server.hpp"
#include "cimflow/sim/decoded.hpp"

namespace cimflow::service {
namespace {

namespace fs = std::filesystem;

// --- protocol ---------------------------------------------------------------

TEST(ProtocolTest, ParsesWellFormedRequest) {
  const Request r =
      parse_request(R"({"id":42,"verb":"evaluate","params":{"model":"micro"}})");
  EXPECT_EQ(r.id, 42);
  EXPECT_EQ(r.verb, "evaluate");
  EXPECT_EQ(r.params.at("model").as_string(), "micro");
}

TEST(ProtocolTest, DefaultsIdAndParams) {
  const Request r = parse_request(R"({"verb":"stats"})");
  EXPECT_EQ(r.id, 0);
  EXPECT_EQ(r.verb, "stats");
  EXPECT_TRUE(r.params.is_object());
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("{nope"), Error);                  // malformed JSON
  EXPECT_THROW(parse_request("[1,2]"), Error);                  // not an object
  EXPECT_THROW(parse_request(R"({"id":1})"), Error);            // missing verb
  EXPECT_THROW(parse_request(R"({"verb":""})"), Error);         // empty verb
  EXPECT_THROW(parse_request(R"({"verb":7})"), Error);          // non-string verb
  EXPECT_THROW(parse_request(R"({"verb":"x","id":"a"})"), Error);
  EXPECT_THROW(parse_request(R"({"verb":"x","params":[]})"), Error);
  try {
    parse_request("{nope");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
  }
}

TEST(ProtocolTest, EventsAreSingleLineAndStructured) {
  const Json progress = progress_event(3, 1, 4);
  EXPECT_EQ(progress.at("event").as_string(), "progress");
  EXPECT_EQ(progress.at("completed").as_int(), 1);
  EXPECT_EQ(progress.at("total").as_int(), 4);

  JsonObject body;
  body["payload"] = Json(JsonObject{{"x", Json(std::int64_t{1})}});
  const Json result = result_event(3, Json(std::move(body)));
  EXPECT_EQ(result.at("event").as_string(), "result");
  EXPECT_EQ(result.at("id").as_int(), 3);
  EXPECT_EQ(result.at("payload").at("x").as_int(), 1);

  const Json error = error_event(9, ErrorCode::kCapacityExceeded, "full");
  EXPECT_EQ(error.at("error").at("code").as_string(), "CapacityExceeded");
  EXPECT_EQ(error.at("error").at("message").as_string(), "full");

  for (const Json& event : {progress, result, error}) {
    const std::string line = wire_line(event);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    // Exactly one newline: the framing one.
    EXPECT_EQ(line.find('\n'), line.size() - 1);
    // The line round-trips through the parser.
    EXPECT_EQ(Json::parse(line).dump(), event.dump());
  }
}

TEST(ProtocolTest, DumpLineMatchesDumpSemantics) {
  const Json doc = Json::parse(
      R"({"a":[1,2.5,"x\n"],"b":{"c":true,"d":null},"e":-7})");
  const std::string line = doc.dump_line();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find(' '), std::string::npos);
  EXPECT_EQ(Json::parse(line).dump(), doc.dump());
}

// --- daemon harness ---------------------------------------------------------

std::string unique_socket_path(const std::string& tag) {
  // Keep it short: sun_path is ~108 bytes.
  return (fs::temp_directory_path() /
          ("cimflowd_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

/// A daemon running serve() on a background thread. Destruction stops and
/// joins it.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonOptions options)
      : daemon_(std::move(options)), thread_([this] { daemon_.serve(); }) {}
  ~DaemonHarness() {
    daemon_.request_stop();
    thread_.join();
  }
  Daemon& daemon() { return daemon_; }

 private:
  Daemon daemon_;
  std::thread thread_;
};

/// Blocking line-oriented client for tests.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() { close(); }

  bool ok() const { return fd_ >= 0; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_raw(const std::string& bytes) {
    ASSERT_GE(fd_, 0);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// Next event line (blocking); null Json on EOF.
  Json next_event() {
    std::size_t pos;
    while ((pos = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return Json();
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string line = buffer_.substr(0, pos);
    buffer_.erase(0, pos + 1);
    return Json::parse(line);
  }

  /// Skips progress events; returns the first terminal (result/error) event.
  Json terminal_event() {
    while (true) {
      Json event = next_event();
      if (event.is_null() || event.at("event").as_string() != "progress") {
        return event;
      }
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A handler whose requests block until released — makes queue-full, drain,
/// and disconnect timing deterministic.
struct GatedHandler {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  int started = 0;

  std::function<Json(const Request&, const ProgressFn&)> fn() {
    return [this](const Request& request, const ProgressFn&) {
      {
        std::unique_lock<std::mutex> lock(mu);
        ++started;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
      }
      JsonObject payload;
      payload["echo"] = Json(request.verb);
      JsonObject body;
      body["payload"] = Json(std::move(payload));
      return Json(std::move(body));
    };
  }
  void wait_started(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

DaemonOptions base_options(const std::string& tag) {
  DaemonOptions options;
  options.socket_path = unique_socket_path(tag);
  options.workers = 2;
  options.max_queue = 8;
  return options;
}

// --- error paths ------------------------------------------------------------

TEST(DaemonTest, MalformedJsonGetsStructuredParseError) {
  DaemonHarness harness(base_options("badjson"));
  TestClient client(harness.daemon().socket_path());
  ASSERT_TRUE(client.ok());
  client.send_line("{this is not json");
  const Json event = client.terminal_event();
  ASSERT_FALSE(event.is_null());
  EXPECT_EQ(event.at("event").as_string(), "error");
  EXPECT_EQ(event.at("id").as_int(), 0);  // no id could be parsed
  EXPECT_EQ(event.at("error").at("code").as_string(), "ParseError");
}

TEST(DaemonTest, UnknownVerbIsRejectedWithEchoedId) {
  DaemonHarness harness(base_options("unknownverb"));
  TestClient client(harness.daemon().socket_path());
  ASSERT_TRUE(client.ok());
  client.send_line(R"({"id":11,"verb":"frobnicate"})");
  const Json event = client.terminal_event();
  ASSERT_FALSE(event.is_null());
  EXPECT_EQ(event.at("event").as_string(), "error");
  EXPECT_EQ(event.at("id").as_int(), 11);
  EXPECT_EQ(event.at("error").at("code").as_string(), "InvalidArgument");
  EXPECT_NE(event.at("error").at("message").as_string().find("frobnicate"),
            std::string::npos);
}

TEST(DaemonTest, OversizedRequestLineIsDiscardedConnectionSurvives) {
  DaemonOptions options = base_options("oversize");
  options.max_request_bytes = 128;
  DaemonHarness harness(std::move(options));
  TestClient client(harness.daemon().socket_path());
  ASSERT_TRUE(client.ok());
  // One giant line (never fits the bound), then a valid request behind it.
  client.send_raw("{\"verb\":\"evaluate\",\"junk\":\"" + std::string(4096, 'x') +
                  "\"}\n");
  const Json error = client.terminal_event();
  ASSERT_FALSE(error.is_null());
  EXPECT_EQ(error.at("event").as_string(), "error");
  EXPECT_NE(error.at("error").at("message").as_string().find("exceeds"),
            std::string::npos);
  client.send_line(R"({"id":5,"verb":"stats"})");
  const Json stats = client.terminal_event();
  ASSERT_FALSE(stats.is_null());
  EXPECT_EQ(stats.at("event").as_string(), "result");
  EXPECT_EQ(stats.at("id").as_int(), 5);
}

TEST(DaemonTest, FullAdmissionQueueRejectsWithStructuredError) {
  GatedHandler gate;
  DaemonOptions options = base_options("queuefull");
  options.workers = 1;
  options.max_queue = 1;
  options.handler = gate.fn();
  DaemonHarness harness(std::move(options));
  TestClient client(harness.daemon().socket_path());
  ASSERT_TRUE(client.ok());

  client.send_line(R"({"id":1,"verb":"evaluate"})");  // runs (blocked in gate)
  gate.wait_started(1);
  client.send_line(R"({"id":2,"verb":"evaluate"})");  // fills the queue
  // Wait until the daemon reports the queued job, then overflow.
  while (true) {
    TestClient probe(harness.daemon().socket_path());
    ASSERT_TRUE(probe.ok());
    probe.send_line(R"({"verb":"stats"})");
    const Json stats = probe.terminal_event();
    ASSERT_FALSE(stats.is_null());
    if (stats.at("payload").at("daemon").at("queue_depth").as_int() >= 1) break;
  }
  client.send_line(R"({"id":3,"verb":"evaluate"})");  // must be rejected
  const Json rejection = client.terminal_event();
  ASSERT_FALSE(rejection.is_null());
  EXPECT_EQ(rejection.at("event").as_string(), "error");
  EXPECT_EQ(rejection.at("id").as_int(), 3);
  EXPECT_EQ(rejection.at("error").at("code").as_string(), "CapacityExceeded");
  EXPECT_NE(rejection.at("error").at("message").as_string().find("queue is full"),
            std::string::npos);

  gate.release();
  // Both admitted jobs complete, in admission order on this connection.
  const Json first = client.terminal_event();
  ASSERT_FALSE(first.is_null());
  EXPECT_EQ(first.at("event").as_string(), "result");
  const Json second = client.terminal_event();
  ASSERT_FALSE(second.is_null());
  EXPECT_EQ(second.at("event").as_string(), "result");
}

TEST(DaemonTest, ClientDisconnectMidRequestDoesNotKillDaemon) {
  GatedHandler gate;
  DaemonOptions options = base_options("disconnect");
  options.workers = 1;
  options.handler = gate.fn();
  DaemonHarness harness(std::move(options));
  {
    TestClient client(harness.daemon().socket_path());
    ASSERT_TRUE(client.ok());
    client.send_line(R"({"id":1,"verb":"evaluate"})");
    gate.wait_started(1);
    client.close();  // peer gone while its job is in flight
  }
  gate.release();
  // The daemon keeps serving: a fresh connection completes a request.
  TestClient after(harness.daemon().socket_path());
  ASSERT_TRUE(after.ok());
  after.send_line(R"({"id":2,"verb":"evaluate"})");
  const Json event = after.terminal_event();
  ASSERT_FALSE(event.is_null());
  EXPECT_EQ(event.at("event").as_string(), "result");
  EXPECT_EQ(event.at("id").as_int(), 2);
}

TEST(DaemonTest, ShutdownDrainsAdmittedWorkThenStops) {
  GatedHandler gate;
  DaemonOptions options = base_options("shutdown");
  options.workers = 1;
  options.handler = gate.fn();
  auto harness = std::make_unique<DaemonHarness>(std::move(options));
  const std::string path = harness->daemon().socket_path();

  TestClient worker_conn(path);
  ASSERT_TRUE(worker_conn.ok());
  worker_conn.send_line(R"({"id":1,"verb":"evaluate"})");
  gate.wait_started(1);

  TestClient control(path);
  ASSERT_TRUE(control.ok());
  control.send_line(R"({"id":99,"verb":"shutdown"})");

  // New work is refused while draining.
  TestClient late(path);
  ASSERT_TRUE(late.ok());
  Json late_event;
  while (true) {
    late.send_line(R"({"id":7,"verb":"evaluate"})");
    late_event = late.terminal_event();
    ASSERT_FALSE(late_event.is_null());
    if (late_event.at("event").as_string() == "error") break;
    // Raced ahead of the drain flag and was admitted — consume and retry
    // (the gated handler may hold it; release below frees everything).
    break;
  }

  gate.release();
  const Json result = worker_conn.terminal_event();
  ASSERT_FALSE(result.is_null());
  EXPECT_EQ(result.at("event").as_string(), "result");
  EXPECT_EQ(result.at("id").as_int(), 1);

  const Json done = control.terminal_event();
  ASSERT_FALSE(done.is_null());
  EXPECT_EQ(done.at("event").as_string(), "result");
  EXPECT_EQ(done.at("id").as_int(), 99);
  EXPECT_TRUE(done.at("payload").at("stopped").as_bool());

  harness.reset();  // serve() must return promptly after the drain
  EXPECT_FALSE(fs::exists(path)) << "socket file should be unlinked on exit";
}

// --- warm-path acceptance ----------------------------------------------------

TEST(DaemonTest, EvaluatePayloadMatchesDirectFlowBytes) {
  DaemonHarness harness(base_options("evalbytes"));
  TestClient client(harness.daemon().socket_path());
  ASSERT_TRUE(client.ok());

  const std::string request =
      R"({"id":1,"verb":"evaluate","params":{"model":"micro","batch":2,"strategy":"dp"}})";
  client.send_line(request);
  const Json first = client.terminal_event();
  ASSERT_FALSE(first.is_null());
  ASSERT_EQ(first.at("event").as_string(), "result")
      << first.dump();
  EXPECT_FALSE(first.at("cache").at("compile_memo_hit").as_bool());

  // The exact bytes `cimflow_cli evaluate --model micro --batch 2 --json F`
  // would write.
  const graph::Graph model = models::build_model("micro", {});
  Flow flow(arch::ArchConfig::cimflow_default());
  FlowOptions fopt;
  fopt.strategy = compiler::Strategy::kDpOptimized;
  fopt.batch = 2;
  const std::string expect = flow.evaluate(model, fopt).to_json().dump();
  EXPECT_EQ(first.at("payload").dump(), expect);

  // A repeated identical request is served from the warm program memo.
  client.send_line(request);
  const Json second = client.terminal_event();
  ASSERT_FALSE(second.is_null());
  ASSERT_EQ(second.at("event").as_string(), "result");
  EXPECT_TRUE(second.at("cache").at("compile_memo_hit").as_bool());
  EXPECT_EQ(second.at("payload").dump(), expect);

  // stats reflects both requests and the memoized compile.
  client.send_line(R"({"id":3,"verb":"stats"})");
  const Json stats = client.terminal_event();
  ASSERT_FALSE(stats.is_null());
  const Json& payload = stats.at("payload");
  EXPECT_EQ(payload.at("verbs").at("evaluate").at("requests").as_int(), 2);
  EXPECT_EQ(payload.at("verbs").at("evaluate").at("failures").as_int(), 0);
  // Nanosecond-sourced wall clocks: even a warm-memo request completing in
  // microseconds must register as strictly positive time (the old
  // double-milliseconds counters truncated these to zero).
  EXPECT_GT(payload.at("verbs").at("evaluate").at("wall_seconds_last").as_double(), 0.0);
  EXPECT_GT(payload.at("verbs").at("evaluate").at("wall_seconds_total").as_double(), 0.0);
  EXPECT_GT(payload.at("verbs").at("evaluate").at("latency_p50_seconds").as_double(), 0.0);
  EXPECT_GE(payload.at("verbs").at("evaluate").at("latency_p99_seconds").as_double(),
            payload.at("verbs").at("evaluate").at("latency_p50_seconds").as_double());
  EXPECT_EQ(payload.at("memo_entries").as_int(), 1);
  EXPECT_EQ(payload.at("models_cached").as_int(), 1);
  EXPECT_EQ(payload.at("daemon").at("completed").as_int(), 2);
  // Event-kernel counters aggregated over both simulator runs.
  EXPECT_EQ(payload.at("scheduler").at("reports").as_int(), 2);
  EXPECT_GT(payload.at("scheduler").at("events_dispatched").as_int(), 0);
  EXPECT_GT(payload.at("scheduler").at("max_queue_depth").as_int(), 0);
  EXPECT_GE(payload.at("scheduler").at("idle_cycles_skipped").as_int(), 0);

  // The `metrics` verb serves the same counters as Prometheus text
  // exposition: a string payload with per-verb histogram series.
  client.send_line(R"({"id":4,"verb":"metrics"})");
  const Json metrics = client.terminal_event();
  ASSERT_FALSE(metrics.is_null());
  ASSERT_EQ(metrics.at("event").as_string(), "result");
  ASSERT_TRUE(metrics.at("payload").is_string());
  const std::string text = metrics.at("payload").as_string();
  EXPECT_NE(text.find("cimflowd_requests_total{verb=\"evaluate\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE cimflowd_request_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("cimflowd_request_seconds_bucket{verb=\"evaluate\",le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cimflowd_request_seconds_count{verb=\"evaluate\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cimflowd_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("cimflowd_compile_memo_entries 1"), std::string::npos);
}

TEST(DaemonTest, SweepPayloadMatchesDirectDriverBytesAndStreamsProgress) {
  DaemonHarness harness(base_options("sweepbytes"));
  TestClient client(harness.daemon().socket_path());
  ASSERT_TRUE(client.ok());

  client.send_line(
      R"({"id":1,"verb":"sweep","params":{"model":"micro","mg":[4,8],"flit":[8],)"
      R"("strategies":["generic"],"batch":1}})");
  std::size_t progress_events = 0;
  Json event;
  while (true) {
    event = client.next_event();
    ASSERT_FALSE(event.is_null());
    if (event.at("event").as_string() != "progress") break;
    ++progress_events;
  }
  ASSERT_EQ(event.at("event").as_string(), "result") << event.dump();
  EXPECT_EQ(progress_events, 2u);  // one per evaluated point

  const graph::Graph model = models::build_model("micro", {});
  search::SearchJob job;
  job.space.mg_sizes = {4, 8};
  job.space.flit_sizes = {8};
  job.space.strategies = {compiler::Strategy::kGeneric};
  job.batch = 1;
  const auto strategy = search::make_strategy("grid");
  const search::SearchResult direct = search::SearchDriver().run(
      model, arch::ArchConfig::cimflow_default(), *strategy, job);
  EXPECT_EQ(event.at("payload").dump(), direct.to_json(false).dump());
}

}  // namespace
}  // namespace cimflow::service
