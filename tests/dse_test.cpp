// Tests for the parallel design-space exploration engine: determinism across
// thread counts, compiled-program cache accounting, per-point failure
// isolation, and in-order result streaming.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cimflow/core/dse.hpp"
#include "cimflow/core/program_cache.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/hash.hpp"

namespace cimflow {
namespace {

DseJob micro_job() {
  DseJob job;
  job.mg_sizes = {4, 8};
  job.flit_sizes = {8, 16};
  job.strategies = {compiler::Strategy::kGeneric, compiler::Strategy::kDpOptimized};
  job.batch = 2;
  return job;
}

/// Every byte a sweep produces, in grid order.
std::string digest(const DseResult& result) {
  std::string out;
  for (const DsePoint& point : result.points) {
    out += std::to_string(point.index) + "|";
    out += std::to_string(point.input_seed) + "|";
    out += point.ok ? point.report.summary() : "FAILED:" + point.error;
    out += "\n";
  }
  return out;
}

TEST(DseEngineTest, OneThreadMatchesManyThreadsByteForByte) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  const DseJob job = micro_job();

  const DseResult serial = DseEngine(std::size_t{1}).run(model, base, job);
  const DseResult parallel = DseEngine(std::size_t{4}).run(model, base, job);

  EXPECT_EQ(serial.stats.threads_used, 1u);
  EXPECT_EQ(parallel.stats.threads_used, 4u);
  EXPECT_EQ(serial.points.size(), 8u);
  EXPECT_EQ(serial.stats.evaluated, 8u);
  EXPECT_EQ(digest(serial), digest(parallel));
}

TEST(DseEngineTest, FunctionalSweepIsScheduleIndependent) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job = micro_job();
  job.strategies = {compiler::Strategy::kDpOptimized};
  job.functional = true;  // real INT8 data movement, seeded per point

  const DseResult serial = DseEngine(std::size_t{1}).run(model, base, job);
  const DseResult parallel = DseEngine(std::size_t{3}).run(model, base, job);
  EXPECT_EQ(serial.stats.evaluated, 4u);
  EXPECT_EQ(digest(serial), digest(parallel));
}

TEST(DseEngineTest, PointSeedsDeriveFromIndexNotWorker) {
  // Seeds are a pure function of (base seed, index) — stable across runs.
  EXPECT_EQ(dse_point_seed(7, 0), dse_point_seed(7, 0));
  EXPECT_NE(dse_point_seed(7, 0), dse_point_seed(7, 1));
  EXPECT_NE(dse_point_seed(7, 0), dse_point_seed(8, 0));
}

TEST(DseEngineTest, ProgramCacheCountsHitsForSharedConfigurations) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job;
  job.mg_sizes = {8};
  job.flit_sizes = {8, 8, 8};  // three points, one software configuration
  job.strategies = {compiler::Strategy::kGeneric};
  job.batch = 2;

  const DseResult result = DseEngine(std::size_t{2}).run(model, base, job);
  EXPECT_EQ(result.stats.evaluated, 3u);
  EXPECT_EQ(result.stats.compile_cache_misses, 1u);
  EXPECT_EQ(result.stats.compile_cache_hits, 2u);
  // All three points share one program, so reports beyond the seed differ
  // only in their index.
  EXPECT_EQ(result.points[0].report.summary(), result.points[1].report.summary());
  EXPECT_EQ(result.points[1].report.summary(), result.points[2].report.summary());
}

TEST(DseEngineTest, CacheCanBeDisabled) {
  const graph::Graph model = models::micro_cnn({});
  DseJob job;
  job.mg_sizes = {8};
  job.flit_sizes = {8, 8};
  job.strategies = {compiler::Strategy::kGeneric};
  job.batch = 1;
  DseEngine::Options options;
  options.num_threads = 1;
  options.cache_programs = false;
  const DseResult result =
      DseEngine(options).run(model, arch::ArchConfig::cimflow_default(), job);
  EXPECT_EQ(result.stats.compile_cache_hits, 0u);
  EXPECT_EQ(result.stats.compile_cache_misses, 2u);
}

TEST(DseEngineTest, EnergyOnlyVariationsShareCompiledPrograms) {
  // EnergyParams never reach the compiler, so two configs differing only in
  // energy have equal compile fingerprints (but distinct full fingerprints).
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  arch::EnergyParams energy = base.energy();
  energy.noc_pj_per_flit_hop *= 2.0;
  const arch::ArchConfig hot(base.chip(), base.core(), base.unit(), energy);
  EXPECT_EQ(base.compile_fingerprint(), hot.compile_fingerprint());
  EXPECT_NE(base.fingerprint(), hot.fingerprint());
  // And a swept parameter changes both.
  const arch::ArchConfig wide = arch_with(base, 16, 8);
  EXPECT_NE(base.compile_fingerprint(), wide.compile_fingerprint());
}

TEST(DseEngineTest, FailingPointDoesNotPoisonSweep) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job;
  job.mg_sizes = {8, -1, 4};  // mg = -1 fails ArchConfig validation
  job.flit_sizes = {8};
  job.strategies = {compiler::Strategy::kGeneric};
  job.batch = 2;

  const DseResult result = DseEngine(std::size_t{2}).run(model, base, job);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_EQ(result.stats.evaluated, 2u);
  EXPECT_EQ(result.stats.failed, 1u);
  EXPECT_TRUE(result.points[0].ok);
  EXPECT_FALSE(result.points[1].ok);
  EXPECT_FALSE(result.points[1].error.empty());
  EXPECT_TRUE(result.points[2].ok);
  // ok_points keeps grid order and drops the failure.
  const std::vector<DsePoint> ok = result.ok_points();
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_EQ(ok[0].index, 0u);
  EXPECT_EQ(ok[1].index, 2u);
}

TEST(DseEngineTest, StreamsPointsInGridOrder) {
  const graph::Graph model = models::micro_cnn({});
  DseJob job = micro_job();
  std::vector<std::size_t> streamed;
  std::vector<std::size_t> progress;
  job.on_point = [&](const DsePoint& p) { streamed.push_back(p.index); };
  job.progress = [&](std::size_t completed, std::size_t) {
    progress.push_back(completed);
  };
  const DseResult result =
      DseEngine(std::size_t{4}).run(model, arch::ArchConfig::cimflow_default(), job);
  ASSERT_EQ(streamed.size(), result.points.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) EXPECT_EQ(streamed[i], i);
  // Progress counts are monotonically increasing and end at the total.
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_LT(progress[i - 1], progress[i]);
  }
  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress.back(), result.points.size());
}

TEST(DseEngineTest, CallbackExceptionPropagates) {
  const graph::Graph model = models::micro_cnn({});
  DseJob job;
  job.mg_sizes = {8, 4};
  job.flit_sizes = {8};
  job.strategies = {compiler::Strategy::kGeneric};
  job.batch = 1;
  job.on_point = [](const DsePoint&) { throw std::runtime_error("observer bug"); };
  EXPECT_THROW(
      DseEngine(std::size_t{2}).run(model, arch::ArchConfig::cimflow_default(), job),
      std::runtime_error);
}

TEST(DseEngineTest, EmptyGridReturnsEmptyResult) {
  DseJob job;
  job.mg_sizes = {};
  const DseResult result = DseEngine(std::size_t{4}).run(
      models::micro_cnn({}), arch::ArchConfig::cimflow_default(), job);
  EXPECT_TRUE(result.points.empty());
  EXPECT_EQ(result.stats.total_points, 0u);
}

TEST(DseEngineTest, ExplicitPointsMatchTheirGridEquivalents) {
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  const DseJob grid = micro_job();
  const DseResult dense = DseEngine(std::size_t{2}).run(model, base, grid);

  // The same samples as grid indices 5 and 2, in a different order, with
  // their canonical seed indices: reports must match the dense run's
  // byte-for-byte (seeds derive from seed_index, not batch position).
  DseJob sparse;
  sparse.batch = grid.batch;
  sparse.explicit_points = {
      {8, 8, compiler::Strategy::kDpOptimized, 5},
      {4, 16, compiler::Strategy::kGeneric, 2},
  };
  ASSERT_EQ(sparse.size(), 2u);
  const DseResult picked = DseEngine(std::size_t{2}).run(model, base, sparse);
  ASSERT_EQ(picked.points.size(), 2u);
  EXPECT_EQ(picked.points[0].input_seed, dense.points[5].input_seed);
  EXPECT_EQ(picked.points[0].report.summary(), dense.points[5].report.summary());
  EXPECT_EQ(picked.points[1].input_seed, dense.points[2].input_seed);
  EXPECT_EQ(picked.points[1].report.summary(), dense.points[2].report.summary());
}

// --- hoisted in-memory memo (ROADMAP "cross-batch in-memory cache") ------------

TEST(DseEngineTest, HoistedMemoSurvivesAcrossEngineRuns) {
  // Without a cache-dir, each engine run used to recompile every software
  // configuration; a caller-scoped ProgramMemo makes the second run (the
  // SearchDriver's "next batch") compile nothing.
  const graph::Graph model = models::micro_cnn({});
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job;
  job.mg_sizes = {4, 8};
  job.flit_sizes = {8};
  job.strategies = {compiler::Strategy::kGeneric};
  job.batch = 2;

  ProgramMemo memo;
  DseEngine::Options options;
  options.num_threads = 2;
  options.eval.memo = &memo;
  options.eval.model_fingerprint = model_fingerprint(model);
  const DseEngine engine(options);

  const DseResult cold = engine.run(model, base, job);
  EXPECT_EQ(cold.stats.compile_cache_misses, 2u);
  EXPECT_EQ(cold.stats.compile_cache_hits, 0u);
  EXPECT_EQ(memo.size(), 2u);

  const DseResult warm = engine.run(model, base, job);
  EXPECT_EQ(warm.stats.compile_cache_misses, 0u);
  EXPECT_EQ(warm.stats.compile_cache_hits, 2u);
  EXPECT_EQ(digest(cold), digest(warm));
}

TEST(DseEngineTest, MemoKeyIncludesTheModelFingerprint) {
  // One memo serving two models must never cross-serve programs: the model
  // fingerprint is part of the key, so each model compiles its own entry.
  const arch::ArchConfig base = arch::ArchConfig::cimflow_default();
  DseJob job;
  job.mg_sizes = {8};
  job.flit_sizes = {8};
  job.strategies = {compiler::Strategy::kGeneric};
  job.batch = 1;

  models::ModelOptions small;
  small.input_hw = 8;
  const graph::Graph a = models::micro_cnn(small);
  models::ModelOptions bigger = small;
  bigger.seed = 0x7777;  // same topology, different parameters
  const graph::Graph b = models::micro_cnn(bigger);
  ASSERT_NE(model_fingerprint(a), model_fingerprint(b));

  ProgramMemo memo;
  DseEngine::Options options;
  options.num_threads = 1;
  options.eval.memo = &memo;
  // eval.model_fingerprint stays 0: the engine hashes each model itself, so
  // one engine (one EvalContext) can serve both graphs.
  const DseEngine engine(options);

  const DseResult first = engine.run(a, base, job);
  const DseResult second = engine.run(b, base, job);
  EXPECT_EQ(first.stats.compile_cache_misses, 1u);
  EXPECT_EQ(second.stats.compile_cache_misses, 1u);  // b never hits a's entry
  EXPECT_EQ(memo.size(), 2u);
}

TEST(SupportHashTest, Fnv1aIsStableAndSensitive) {
  EXPECT_EQ(fnv1a64(""), kFnv1aOffset);
  EXPECT_EQ(fnv1a64("cimflow"), fnv1a64("cimflow"));
  EXPECT_NE(fnv1a64("cimflow"), fnv1a64("cimflo w"));
  EXPECT_NE(Fnv1a().i64(1).i64(2).digest(), Fnv1a().i64(2).i64(1).digest());
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace cimflow
