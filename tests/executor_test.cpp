// Unit tests for the golden INT8 reference executor: hand-computed cases
// per operator, quantization semantics, padding behavior and batch handling.
#include <gtest/gtest.h>

#include "cimflow/graph/executor.hpp"
#include "cimflow/models/models.hpp"
#include "cimflow/support/numeric.hpp"

namespace cimflow::graph {
namespace {

/// Builds a 1-channel 1x1-kernel conv whose weight and bias we control.
Graph identity_conv(std::int8_t weight, std::int32_t bias, int shift) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 2, 2, 1});
  const NodeId conv = g.add_conv2d(in, ConvAttrs{1, 1, 1, 0});
  g.mutable_node(conv).weights->at(0) = weight;
  g.mutable_node(conv).bias->at(0) = bias;
  g.mutable_node(conv).quant.shift = shift;
  g.set_output(conv);
  return g;
}

TensorI8 make_input(std::initializer_list<std::int8_t> values, Shape shape) {
  TensorI8 t(shape);
  std::int64_t i = 0;
  for (std::int8_t v : values) t.data()[i++] = v;
  return t;
}

TEST(ExecutorTest, ConvQuantizesWithRounding) {
  Graph g = identity_conv(/*weight=*/3, /*bias=*/1, /*shift=*/1);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({10, -10, 5, 0}, Shape{1, 2, 2, 1})});
  // acc = 3*x + 1, then rounding >> 1
  EXPECT_EQ(out.at(0, 0, 0, 0), 16);   // (31) >> 1 -> 15.5 -> 16
  EXPECT_EQ(out.at(0, 0, 1, 0), -15);  // (-29) >> 1 -> -14.5 -> -15 (away from 0)
  EXPECT_EQ(out.at(0, 1, 0, 0), 8);    // (16) >> 1 -> 8
  EXPECT_EQ(out.at(0, 1, 1, 0), 1);    // (1) >> 1 -> 0.5 -> 1
}

TEST(ExecutorTest, ConvSaturates) {
  Graph g = identity_conv(/*weight=*/127, /*bias=*/0, /*shift=*/0);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({127, -128, 0, 1}, Shape{1, 2, 2, 1})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 127);   // 16129 saturates
  EXPECT_EQ(out.at(0, 0, 1, 0), -128);  // -16256 saturates
  EXPECT_EQ(out.at(0, 1, 1, 0), 127);
}

TEST(ExecutorTest, ConvPaddingContributesZero) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 2, 2, 1});
  const NodeId conv = g.add_conv2d(in, ConvAttrs{1, 3, 1, 1});
  std::fill(g.mutable_node(conv).weights->begin(),
            g.mutable_node(conv).weights->end(), std::int8_t{1});
  g.mutable_node(conv).quant.shift = 0;
  g.set_output(conv);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({1, 2, 3, 4}, Shape{1, 2, 2, 1})});
  // 3x3 all-ones kernel over a 2x2 map: every output is the full sum = 10,
  // minus what falls outside (padding contributes zero).
  EXPECT_EQ(out.at(0, 0, 0, 0), 10);
  EXPECT_EQ(out.at(0, 1, 1, 0), 10);
}

TEST(ExecutorTest, ReluClampsBothEnds) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 1, 1, 4});
  const NodeId relu = g.add_relu(in, /*hi=*/50);
  g.set_output(relu);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({-3, 0, 20, 100}, Shape{1, 1, 1, 4})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 0);
  EXPECT_EQ(out.at(0, 0, 0, 1), 0);
  EXPECT_EQ(out.at(0, 0, 0, 2), 20);
  EXPECT_EQ(out.at(0, 0, 0, 3), 50);
}

TEST(ExecutorTest, AddSaturates) {
  Graph g;
  const NodeId a = g.add_input(Shape{1, 1, 1, 2}, "a");
  const NodeId b = g.add_input(Shape{1, 1, 1, 2}, "b");
  const NodeId sum = g.add_add(a, b);
  g.set_output(sum);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({100, -100}, Shape{1, 1, 1, 2}),
                                 make_input({100, -100}, Shape{1, 1, 1, 2})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 127);
  EXPECT_EQ(out.at(0, 0, 0, 1), -128);
}

TEST(ExecutorTest, MaxPoolUsesNegativeInfinityPadding) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 2, 2, 1});
  const NodeId pool = g.add_max_pool(in, PoolAttrs{3, 2, 1});
  g.set_output(pool);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({-5, -6, -7, -8}, Shape{1, 2, 2, 1})});
  // All-negative input: padding must NOT contribute zeros.
  EXPECT_EQ(out.at(0, 0, 0, 0), -5);
}

TEST(ExecutorTest, AvgPoolRoundsOverFullKernelArea) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 2, 2, 1});
  const NodeId pool = g.add_avg_pool(in, PoolAttrs{2, 2, 0});
  g.set_output(pool);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({1, 2, 3, 5}, Shape{1, 2, 2, 1})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 3);  // 11/4 = 2.75 -> 3
}

TEST(ExecutorTest, GlobalAvgPoolMatchesMean) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 2, 2, 2});
  const NodeId gap = g.add_global_avg_pool(in);
  g.set_output(gap);
  ReferenceExecutor exec(g);
  // Channel 0: {4, -4, 8, 0} -> mean 2; channel 1: {1, 1, 1, 2} -> 1.25 -> 1
  const TensorI8 out =
      exec.run({make_input({4, 1, -4, 1, 8, 1, 0, 2}, Shape{1, 2, 2, 2})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 2);
  EXPECT_EQ(out.at(0, 0, 0, 1), 1);
}

TEST(ExecutorTest, LutAppliesTable) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 1, 1, 3});
  LutAttrs lut;
  for (int i = 0; i < 256; ++i) {
    lut.table[static_cast<std::size_t>(i)] =
        saturate_int8(-static_cast<std::int8_t>(i));  // negation table
  }
  const NodeId out_node = g.add_lut(in, lut);
  g.set_output(out_node);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({5, -7, 0}, Shape{1, 1, 1, 3})});
  EXPECT_EQ(out.at(0, 0, 0, 0), -5);
  EXPECT_EQ(out.at(0, 0, 0, 1), 7);
  EXPECT_EQ(out.at(0, 0, 0, 2), 0);
}

TEST(ExecutorTest, ScaleChannelsPerChannel) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 1, 2, 2});
  const NodeId gate = g.add_input(Shape{1, 1, 1, 2}, "gate");
  const NodeId scaled = g.add_scale_channels(in, gate);
  g.set_output(scaled);
  ReferenceExecutor exec(g);
  // shift is 7: out = round(a * s / 128)
  const TensorI8 out = exec.run({make_input({64, 64, -64, 100}, Shape{1, 1, 2, 2}),
                                 make_input({127, 64}, Shape{1, 1, 1, 2})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 64);   // 64*127/128 = 63.5 -> 64
  EXPECT_EQ(out.at(0, 0, 0, 1), 32);   // 64*64/128 = 32
  EXPECT_EQ(out.at(0, 0, 1, 0), -64);  // -64*127/128 -> -63.5 -> -64
  EXPECT_EQ(out.at(0, 0, 1, 1), 50);   // 100*64/128 = 50
}

TEST(ExecutorTest, DepthwiseIsPerChannel) {
  Graph g;
  const NodeId in = g.add_input(Shape{1, 1, 1, 2});
  const NodeId dw = g.add_depthwise_conv2d(in, 1, 1, 0);
  (*g.mutable_node(dw).weights)[0] = 2;
  (*g.mutable_node(dw).weights)[1] = -3;
  g.mutable_node(dw).quant.shift = 0;
  g.set_output(dw);
  ReferenceExecutor exec(g);
  const TensorI8 out = exec.run({make_input({10, 10}, Shape{1, 1, 1, 2})});
  EXPECT_EQ(out.at(0, 0, 0, 0), 20);
  EXPECT_EQ(out.at(0, 0, 0, 1), -30);
}

TEST(ExecutorTest, PerLayerValuesAccessible) {
  Graph g = identity_conv(1, 0, 0);
  ReferenceExecutor exec(g);
  exec.run({make_input({1, 2, 3, 4}, Shape{1, 2, 2, 1})});
  EXPECT_EQ(exec.value(1).at(0, 1, 1, 0), 4);
}

TEST(ExecutorTest, InputValidation) {
  Graph g = identity_conv(1, 0, 0);
  ReferenceExecutor exec(g);
  EXPECT_THROW(exec.run({}), Error);  // wrong input count
  EXPECT_THROW(exec.run({TensorI8(Shape{1, 3, 3, 1})}), Error);  // wrong shape
}

}  // namespace
}  // namespace cimflow::graph
